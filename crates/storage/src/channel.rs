//! Pluggable error substrates: the error channel as a first-class trait.
//!
//! The paper's headline (47% of the EC overhead eliminated at < 0.3 dB)
//! assumes i.i.d. MLC PCM bit flips. Real lossy channels are often
//! *bursty* (a NAND page dies whole) or *re-encoding* (payload stored as
//! video survives a transcode, Vstorage-style). [`Substrate`] abstracts
//! the channel so the importance-partitioned-vs-uniform comparison can
//! be rerun per channel without touching the pipeline:
//!
//! - [`MlcPcm`] — the paper's multi-level-cell PCM channel: i.i.d. flips
//!   at a drift-calibrated raw BER, BCH-protected. This wraps the exact
//!   corruption code the pipeline always ran; seeded outputs are
//!   byte-identical to the pre-trait implementation (pinned digests in
//!   `tests/determinism.rs` are the gate).
//! - [`BurstErasure`] — whole-page loss with configurable burst length
//!   plus a background i.i.d. floor. Protected by the in-repo
//!   Reed–Solomon code over GF(2^10) ([`crate::rs`]) behind a symbol
//!   interleaver ([`crate::interleave`]), with page-granular *erasure*
//!   locations handed to the decoder; bit-interleaved BCH is available
//!   as an alternative realization.
//! - [`DataInVideo`] — the payload round-trips through our own lossy
//!   codec at a configurable quant level (`vapp-codec`, all-intra),
//!   RS-protected. Damage is content-dependent, deterministic, and
//!   spatially clustered — the opposite of the i.i.d. assumption.
//!
//! # Determinism contract for implementors
//!
//! `corrupt_stream` MUST be a pure function of `(data, bits, t, exact,
//! seed)` — independent of thread count, call order, and global state.
//! The pipeline derives one sub-seed per protection level up front
//! (`vapp_sim::derive_subseeds`) and fans levels out on `vapp-par`;
//! any internal parallelism must likewise derive per-unit sub-seeds
//! before fanning out. Implementations may *ignore* the seed when the
//! channel is intrinsically deterministic (`DataInVideo`'s damage is a
//! function of the carrier content alone), but must never draw from
//! ambient randomness. Every RNG an implementation runs must be seeded
//! from `seed` (directly or via `derive_subseeds`) and consumed in a
//! deterministic order.

use std::sync::{Arc, OnceLock};

use crate::batch::{self, BlockBatch};
use crate::bch::{Bch, DecodeOutcome, DATA_BITS};
use crate::bits::BitBuf;
use crate::interleave::Interleaver;
use crate::mlc::SlcSubstrate;
use crate::rs::{Rs, RS_DATA_SYMS, SYM_BITS};
use crate::uber;
use vapp_codec::{Encoder, EncoderConfig};
use vapp_media::{Frame, Video};
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::{derive_subseeds, pick_k_positions, pick_positions};

/// Per-stream corruption tally returned by [`Substrate::corrupt_stream`]
/// and folded into the pipeline's per-level observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorruptTally {
    /// Raw bit flips injected into the physical medium (codeword space
    /// for coded realizations — parity damage counts too).
    pub flips: u64,
    /// Protected blocks/codewords that saw no damage at all.
    pub clean: u64,
    /// Blocks/codewords with damage fully corrected.
    pub corrected: u64,
    /// Blocks/codewords past the realization's correction radius.
    pub uncorrectable: u64,
}

impl CorruptTally {
    fn absorb(&mut self, other: CorruptTally) {
        self.flips += other.flips;
        self.clean += other.clean;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }
}

/// An error substrate: the physical medium's density surface, its
/// analytic error model, and its seeded corruption simulators.
///
/// Protection strength is expressed as the ladder parameter `t` (the
/// `EcScheme::Bch(t)` strength; `t == 0` means unprotected). Each
/// substrate *realizes* `t` with whatever code suits its channel — BCH
/// for i.i.d. flips, interleaved RS for bursts — at its own
/// [`overhead`](Substrate::overhead), so one importance assignment
/// transfers across substrates.
pub trait Substrate: Send + Sync + std::fmt::Debug {
    /// Short stable identifier (`"mlc"`, `"slc"`, `"burst"`, `"video"`).
    fn name(&self) -> &'static str;

    /// Storage density: payload bits per physical cell.
    fn bits_per_cell(&self) -> u32;

    /// Marginal per-bit error rate of the unprotected channel.
    fn raw_ber(&self) -> f64;

    /// EC overhead (parity bits per data bit) this substrate's
    /// realization of strength `t` costs. `t == 0` costs nothing.
    fn overhead(&self, t: usize) -> f64;

    /// Analytic probability that one protected block fails at strength
    /// `t` (for bursty/clustered channels this is a documented i.i.d.
    /// approximation; the corruption simulators are the ground truth).
    fn block_failure_rate(&self, t: usize) -> f64;

    /// Corrupts one protection stream in place (MSB-first bit order,
    /// matching codec payloads). `bits` is the live payload length;
    /// `data` may be longer. `exact` selects the exact block simulator
    /// over an analytic shortcut where the substrate offers both.
    /// See the module docs for the determinism contract.
    fn corrupt_stream(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        exact: bool,
        seed: u64,
    ) -> CorruptTally;

    /// Block-granular raw-channel damage: corrupts an unprotected
    /// buffer and returns the number of bit flips delivered.
    fn corrupt_block(&self, data: &mut [u8], bits: u64, seed: u64) -> u64 {
        self.corrupt_stream(data, bits, 0, true, seed).flips
    }
}

/// Shorthand for the paper's MLC PCM substrate at a given raw BER.
pub fn mlc_pcm(raw_ber: f64) -> Arc<dyn Substrate> {
    Arc::new(MlcPcm::new(raw_ber))
}

/// Shorthand for the precise SLC baseline substrate.
pub fn slc() -> Arc<dyn Substrate> {
    Arc::new(SlcSubstrate)
}

/// Shorthand for a [`BurstErasure`] substrate.
pub fn burst_erasure(cfg: BurstConfig) -> Arc<dyn Substrate> {
    Arc::new(BurstErasure::new(cfg))
}

/// Shorthand for a [`DataInVideo`] substrate.
pub fn data_in_video(cfg: VideoChannelConfig) -> Arc<dyn Substrate> {
    Arc::new(DataInVideo::new(cfg))
}

/// Flips one bit in an MSB-first byte stream (same convention as
/// `vapp_codec::bitstream::flip_bit`; duplicated here so the storage
/// crate's hot loop does not reach across the crate boundary).
#[inline]
fn flip_stream_bit(bytes: &mut [u8], bit_index: u64) {
    let byte = (bit_index / 8) as usize;
    if byte < bytes.len() {
        bytes[byte] ^= 1 << (7 - (bit_index % 8));
    }
}

/// Analytic i.i.d. block failure probability for strength `t` on
/// 512-bit data blocks.
fn iid_block_failure(raw_ber: f64, t: usize) -> f64 {
    if t == 0 {
        uber::binomial_tail(DATA_BITS as u64, raw_ber, 0)
    } else {
        uber::block_failure_rate(Bch::cached(t), raw_ber)
    }
}

/// The i.i.d.-flip + BCH corruption engine shared by [`MlcPcm`] and
/// [`SlcSubstrate`].
///
/// This is the pipeline's original `corrupt_stream_bits`, moved here
/// verbatim (dispatching on `t` instead of `EcScheme`): RNG construction,
/// draw order, block grouping and counter emission are unchanged, so
/// seeded outputs stay byte-identical to the pre-trait pipeline at any
/// worker count.
fn corrupt_iid_bch(
    data: &mut [u8],
    bits: u64,
    t: usize,
    exact: bool,
    raw_ber: f64,
    seed: u64,
) -> CorruptTally {
    let mut stats = CorruptTally::default();
    if bits == 0 || raw_ber == 0.0 {
        return stats;
    }
    if t == 0 {
        let mut rng = StdRng::seed_from_u64(seed);
        for pos in pick_positions(&[0..bits], raw_ber, &mut rng) {
            flip_stream_bit(data, pos);
            stats.flips += 1;
        }
    } else if !exact {
        // Analytic block model: each 512-bit block fails independently
        // with the binomial-tail probability; a failed block keeps
        // t + 1 raw errors (the dominant tail term).
        let code = Bch::cached(t);
        // One hash lookup after the first call: the binomial tails
        // behind these rates cost ~100 µs of `ln_gamma` sums, which
        // used to dominate analytic-mode `store_load`.
        let (q, p_corr) = uber::cached_block_rates(code, raw_ber);
        let blocks = bits.div_ceil(DATA_BITS as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        for b in 0..blocks {
            if !rng.random_bool(q) {
                continue;
            }
            stats.uncorrectable += 1;
            let start = b * DATA_BITS as u64;
            let end = ((b + 1) * DATA_BITS as u64).min(bits);
            for pos in pick_k_positions(&[start..end], t as u64 + 1, &mut rng) {
                flip_stream_bit(data, pos);
                stats.flips += 1;
            }
        }
        // Corrected-block tally for this mode is the binomial
        // expectation, computed deterministically — no extra draws.
        stats.corrected =
            ((blocks as f64 * p_corr).round() as u64).min(blocks - stats.uncorrectable);
        stats.clean = blocks - stats.uncorrectable - stats.corrected;
        let reg = vapp_obs::current();
        reg.counter("storage.bch.blocks").add(blocks);
        reg.counter("storage.bch.clean").add(stats.clean);
        reg.counter("storage.bch.corrected").add(stats.corrected);
        reg.counter("storage.bch.uncorrectable")
            .add(stats.uncorrectable);
    } else {
        // Exact model, bitsliced: sub-seeds stay per 512-bit block, but
        // blocks decode in 64-lane batches on the batch engine, fed the
        // bare injected *error patterns*. That is outcome-equivalent to
        // encode+flip+decode of the real content: syndromes are linear
        // and vanish on codewords, so syndromes(cw + e) = syndromes(e),
        // decode outcomes depend only on syndromes, and the stream bytes
        // change only on Uncorrectable — where the decoder applies no
        // corrections and the damage delivered is exactly the injected
        // flips that land inside the block's live data bits
        // (property-pinned in `tests/batch_equivalence.rs`).
        let code = Bch::cached(t);
        let blocks = bits.div_ceil(DATA_BITS as u64) as usize;
        vapp_obs::counter!("storage.bch.blocks", blocks as u64);
        let block_seeds = derive_subseeds(seed, blocks);
        let used = (bits.div_ceil(8) as usize).min(data.len());
        let group_bytes = (DATA_BITS / 8) * batch::LANES;
        let per_group = vapp_par::par_chunks(&mut data[..used], group_bytes, |g, chunk| {
            let base = g * batch::LANES;
            let group_blocks = (blocks - base).min(batch::LANES);
            let mut st = CorruptTally::default();
            // Flip positions depend only on each block's sub-seed,
            // never its contents, so they draw first: blocks with no
            // flips (the common case at realistic BERs) round-trip
            // clean without touching the code at all.
            let mut dirty: Vec<(usize, Vec<u64>)> = Vec::new();
            for lb in 0..group_blocks {
                let mut rng = StdRng::seed_from_u64(block_seeds[base + lb]);
                let flips = pick_positions(&[0..code.codeword_bits() as u64], raw_ber, &mut rng);
                if flips.is_empty() {
                    st.clean += 1;
                } else {
                    st.flips += flips.len() as u64;
                    dirty.push((lb, flips));
                }
            }
            if st.clean > 0 {
                vapp_obs::counter!("storage.bch.clean", st.clean);
            }
            if dirty.is_empty() {
                return st;
            }
            // One batch lane per dirty block, holding just its error
            // pattern; the batch decoder tallies the `storage.bch.*`
            // outcome counters itself.
            let mut errs = BlockBatch::zeroed(code, dirty.len());
            for (lane, (_, flips)) in dirty.iter().enumerate() {
                for &f in flips {
                    errs.flip(lane, f as usize);
                }
            }
            let outcomes = code.decode_batch(&mut errs);
            for ((lb, flips), outcome) in dirty.iter().zip(&outcomes) {
                match outcome {
                    DecodeOutcome::Clean => st.clean += 1,
                    DecodeOutcome::Corrected(_) => st.corrected += 1,
                    DecodeOutcome::Uncorrectable => {
                        st.uncorrectable += 1;
                        // Deliver the damage as read: injected flips in
                        // the block's live data bits (MSB-first stream
                        // byte order); parity-region and padding flips
                        // are never part of the stored payload.
                        let start = (base + lb) as u64 * DATA_BITS as u64;
                        let nbits = (start + DATA_BITS as u64).min(bits) - start;
                        let block = &mut chunk[lb * (DATA_BITS / 8)..];
                        for &f in flips {
                            if f < nbits {
                                block[(f / 8) as usize] ^= 0x80u8 >> (f % 8);
                            }
                        }
                    }
                }
            }
            st
        });
        for st in per_group {
            stats.absorb(st);
        }
    }
    stats
}

/// The paper's multi-level-cell PCM substrate: 3 bits/cell, i.i.d. bit
/// flips at a drift-calibrated raw BER, BCH-protected.
#[derive(Clone, Debug)]
pub struct MlcPcm {
    raw_ber: f64,
}

impl MlcPcm {
    /// A substrate with a fixed raw BER (the paper's 1e-3 at the 90-day
    /// scrub interval).
    ///
    /// # Panics
    ///
    /// Panics if `raw_ber` is not a probability.
    pub fn new(raw_ber: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&raw_ber),
            "raw BER must be a probability"
        );
        MlcPcm { raw_ber }
    }

    /// Derives the raw BER from a calibrated cell model at retention
    /// time `t_days` (see [`crate::mlc::MlcSubstrate::raw_ber`]).
    pub fn from_model(model: &crate::mlc::MlcSubstrate, t_days: f64) -> Self {
        MlcPcm::new(model.raw_ber(t_days))
    }
}

impl Substrate for MlcPcm {
    fn name(&self) -> &'static str {
        "mlc"
    }

    fn bits_per_cell(&self) -> u32 {
        3
    }

    fn raw_ber(&self) -> f64 {
        self.raw_ber
    }

    fn overhead(&self, t: usize) -> f64 {
        if t == 0 {
            0.0
        } else {
            Bch::cached(t).overhead()
        }
    }

    fn block_failure_rate(&self, t: usize) -> f64 {
        iid_block_failure(self.raw_ber, t)
    }

    fn corrupt_stream(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        exact: bool,
        seed: u64,
    ) -> CorruptTally {
        vapp_obs::counter!("storage.substrate.streams", 1);
        corrupt_iid_bch(data, bits, t, exact, self.raw_ber, seed)
    }
}

/// The SLC baseline goes through the same trait surface, so density
/// comparisons (fig11) need no special-casing: 1 bit/cell at an
/// effectively error-free rate, same i.i.d. engine if ever corrupted.
impl Substrate for SlcSubstrate {
    fn name(&self) -> &'static str {
        "slc"
    }

    fn bits_per_cell(&self) -> u32 {
        SlcSubstrate::bits_per_cell(self)
    }

    fn raw_ber(&self) -> f64 {
        SlcSubstrate::raw_ber(self)
    }

    fn overhead(&self, t: usize) -> f64 {
        if t == 0 {
            0.0
        } else {
            Bch::cached(t).overhead()
        }
    }

    fn block_failure_rate(&self, t: usize) -> f64 {
        iid_block_failure(SlcSubstrate::raw_ber(self), t)
    }

    fn corrupt_stream(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        exact: bool,
        seed: u64,
    ) -> CorruptTally {
        vapp_obs::counter!("storage.substrate.streams", 1);
        corrupt_iid_bch(data, bits, t, exact, SlcSubstrate::raw_ber(self), seed)
    }
}

/// Configuration for the [`BurstErasure`] substrate.
#[derive(Clone, Debug, PartialEq)]
pub struct BurstConfig {
    /// Page size in bits (the atomic loss unit).
    pub page_bits: u64,
    /// Probability that a loss event starts at any given page.
    pub page_loss: f64,
    /// Consecutive pages wiped per loss event.
    pub burst_pages: u64,
    /// Background independent bit error rate on top of page loss.
    pub iid_ber: f64,
    /// Interleave depth (codewords per interleave group) for the
    /// interleaved-BCH realization.
    pub depth: usize,
    /// Realize protection as bit-interleaved BCH instead of the default
    /// symbol-interleaved Reed–Solomon.
    pub interleaved_bch: bool,
    /// Cell density of the underlying medium.
    pub bits_per_cell: u32,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            page_bits: 2048,
            page_loss: 1e-3,
            burst_pages: 4,
            iid_ber: 1e-5,
            depth: 64,
            interleaved_bch: false,
            bits_per_cell: 3,
        }
    }
}

/// Bursty page-loss substrate: loss events wipe `burst_pages`
/// consecutive pages (their bits read back as garbage — each flips with
/// probability 1/2) and an i.i.d. floor runs underneath. Loss locations
/// are *known* (a dead page announces itself), so the default RS
/// realization decodes them as erasures — worth 2× the correction
/// budget of an unknown error.
#[derive(Clone, Debug)]
pub struct BurstErasure {
    cfg: BurstConfig,
}

impl BurstErasure {
    /// Builds the substrate.
    ///
    /// # Panics
    ///
    /// Panics on non-probability rates or a zero page/burst size.
    pub fn new(cfg: BurstConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.page_loss), "page_loss range");
        assert!((0.0..=1.0).contains(&cfg.iid_ber), "iid_ber range");
        assert!(cfg.page_bits > 0 && cfg.burst_pages > 0, "page geometry");
        assert!(cfg.depth > 0, "interleave depth");
        BurstErasure { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &BurstConfig {
        &self.cfg
    }

    /// Marginal probability that any given page is lost.
    fn page_marginal(&self) -> f64 {
        1.0 - (1.0 - self.cfg.page_loss).powf(self.cfg.burst_pages as f64)
    }

    /// Sorted indices of lost pages: each page starts a loss event with
    /// probability `page_loss`; an event wipes `burst_pages` consecutive
    /// pages and the scan resumes after the burst.
    fn draw_lost_pages(&self, n_pages: u64, rng: &mut StdRng) -> Vec<u64> {
        let mut lost = Vec::new();
        let mut i = 0u64;
        while i < n_pages {
            if rng.random_bool(self.cfg.page_loss) {
                let end = (i + self.cfg.burst_pages).min(n_pages);
                lost.extend(i..end);
                i = end;
            } else {
                i += 1;
            }
        }
        lost
    }

    /// Unprotected damage: lost pages garble the data bits directly.
    fn corrupt_raw(&self, data: &mut [u8], bits: u64, seed: u64) -> CorruptTally {
        let mut tally = CorruptTally::default();
        let seeds = derive_subseeds(seed, 3);
        let n_pages = bits.div_ceil(self.cfg.page_bits);
        let lost = self.draw_lost_pages(n_pages, &mut StdRng::seed_from_u64(seeds[0]));
        vapp_obs::counter!("storage.substrate.burst.pages_lost", lost.len() as u64);
        let mut garble = StdRng::seed_from_u64(seeds[1]);
        for &page in &lost {
            let start = page * self.cfg.page_bits;
            let end = (start + self.cfg.page_bits).min(bits);
            for pos in start..end {
                if garble.random_bool(0.5) {
                    flip_stream_bit(data, pos);
                    tally.flips += 1;
                }
            }
        }
        let mut iid = StdRng::seed_from_u64(seeds[2]);
        for pos in pick_positions(&[0..bits], self.cfg.iid_ber, &mut iid) {
            flip_stream_bit(data, pos);
            tally.flips += 1;
        }
        tally
    }

    /// RS realization: symbol-interleave all codewords of the stream
    /// column-major, draw page losses over the interleaved physical
    /// space, decode each codeword's *error pattern* with the lost
    /// symbols as erasures.
    fn corrupt_rs(&self, data: &mut [u8], bits: u64, t: usize, seed: u64) -> CorruptTally {
        let mut tally = CorruptTally::default();
        let code = Rs::cached(t);
        let k = RS_DATA_SYMS;
        let p = code.parity_syms();
        let n = code.codeword_syms();
        let total_syms = (bits as usize).div_ceil(SYM_BITS);
        let cws = total_syms.div_ceil(k).max(1);
        let phys_syms = cws * n;
        let il = Interleaver::new(cws, phys_syms);
        let phys_bits = (phys_syms * SYM_BITS) as u64;

        let seeds = derive_subseeds(seed, 3);
        let n_pages = phys_bits.div_ceil(self.cfg.page_bits);
        let lost = self.draw_lost_pages(n_pages, &mut StdRng::seed_from_u64(seeds[0]));
        vapp_obs::counter!("storage.substrate.burst.pages_lost", lost.len() as u64);

        // Erased physical symbols: any symbol overlapping a lost page.
        let mut erased = vec![false; phys_syms];
        for &page in &lost {
            let start = (page * self.cfg.page_bits) as usize / SYM_BITS;
            let end = ((page + 1) * self.cfg.page_bits).div_ceil(SYM_BITS as u64) as usize;
            for s in erased.iter_mut().take(end.min(phys_syms)).skip(start) {
                *s = true;
            }
        }

        // Per-codeword error patterns. Erased symbols read back as
        // garbage; garbage XOR original is uniform, so drawing the
        // pattern value directly is distribution-exact and needs no
        // content. Values draw in ascending physical order.
        let mut patterns: Vec<Vec<u16>> = vec![vec![0u16; n]; cws];
        let mut erasures: Vec<Vec<usize>> = vec![Vec::new(); cws];
        let mut garble = StdRng::seed_from_u64(seeds[1]);
        for (phys, flag) in erased.iter().enumerate() {
            if !flag {
                continue;
            }
            let l = il.inverse(phys);
            patterns[l / n][l % n] = garble.random::<u16>() & 0x3FF;
            erasures[l / n].push(l % n);
        }
        let mut iid = StdRng::seed_from_u64(seeds[2]);
        for pos in pick_positions(&[0..phys_bits], self.cfg.iid_ber, &mut iid) {
            let l = il.inverse((pos as usize) / SYM_BITS);
            patterns[l / n][l % n] ^= 1 << (SYM_BITS - 1 - (pos as usize) % SYM_BITS);
        }
        for pat in &patterns {
            tally.flips += pat.iter().map(|&v| v.count_ones() as u64).sum::<u64>();
        }

        vapp_obs::counter!("storage.substrate.rs.codewords", cws as u64);
        for (c, (pattern, eras)) in patterns.iter_mut().zip(&erasures).enumerate() {
            if eras.is_empty() && pattern.iter().all(|&v| v == 0) {
                tally.clean += 1;
                continue;
            }
            match code.decode(pattern, eras) {
                // Clean despite damage means the garbage matched the
                // original (zero pattern): nothing to deliver.
                DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => tally.corrected += 1,
                DecodeOutcome::Uncorrectable => {
                    tally.uncorrectable += 1;
                    // Deliver the pattern to the live data symbols
                    // (positions p..n hold data; parity and padding
                    // damage never reaches the stream).
                    for (j, &v) in pattern.iter().enumerate().skip(p) {
                        if v == 0 {
                            continue;
                        }
                        let gs = c * k + (j - p);
                        if gs >= total_syms {
                            continue;
                        }
                        for b in 0..SYM_BITS {
                            if (v >> (SYM_BITS - 1 - b)) & 1 == 1 {
                                let pos = (gs * SYM_BITS + b) as u64;
                                if pos < bits {
                                    flip_stream_bit(data, pos);
                                }
                            }
                        }
                    }
                }
            }
        }
        let reg = vapp_obs::current();
        reg.counter("storage.substrate.rs.clean").add(tally.clean);
        reg.counter("storage.substrate.rs.corrected")
            .add(tally.corrected);
        reg.counter("storage.substrate.rs.uncorrectable")
            .add(tally.uncorrectable);
        tally
    }

    /// Interleaved-BCH realization: codewords bit-interleave in groups
    /// of `depth`; lost pages become unknown-location bit flips (no
    /// erasure knowledge for BCH), decoded on the batch engine.
    fn corrupt_interleaved_bch(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        seed: u64,
    ) -> CorruptTally {
        let mut tally = CorruptTally::default();
        let code = Bch::cached(t);
        let nb = code.codeword_bits();
        let blocks = bits.div_ceil(DATA_BITS as u64) as usize;
        let d = self.cfg.depth.min(blocks);
        let groups = blocks.div_ceil(d);
        let tail = blocks - (groups - 1) * d;
        let full_bits = d * nb;
        let phys_bits = (blocks * nb) as u64;
        let il_full = Interleaver::new(d, full_bits);
        let il_tail = Interleaver::new(tail, tail * nb);

        // physical bit -> (block, codeword bit)
        let locate = |pos: u64| -> (usize, usize) {
            let g = ((pos as usize) / full_bits).min(groups - 1);
            let local = pos as usize - g * full_bits;
            let il = if g == groups - 1 { &il_tail } else { &il_full };
            let l = il.inverse(local);
            (g * d + l / nb, l % nb)
        };

        let seeds = derive_subseeds(seed, 3);
        let n_pages = phys_bits.div_ceil(self.cfg.page_bits);
        let lost = self.draw_lost_pages(n_pages, &mut StdRng::seed_from_u64(seeds[0]));
        vapp_obs::counter!("storage.substrate.burst.pages_lost", lost.len() as u64);

        let mut patterns: Vec<BitBuf> = (0..blocks).map(|_| BitBuf::zeroed(nb)).collect();
        let mut garble = StdRng::seed_from_u64(seeds[1]);
        for &page in &lost {
            let start = page * self.cfg.page_bits;
            let end = (start + self.cfg.page_bits).min(phys_bits);
            for pos in start..end {
                if garble.random_bool(0.5) {
                    let (block, bit) = locate(pos);
                    patterns[block].flip(bit);
                }
            }
        }
        let mut iid = StdRng::seed_from_u64(seeds[2]);
        for pos in pick_positions(&[0..phys_bits], self.cfg.iid_ber, &mut iid) {
            let (block, bit) = locate(pos);
            patterns[block].flip(bit);
        }
        for pat in &patterns {
            tally.flips += pat.count_ones() as u64;
        }

        // Decode only the dirty patterns, batched (batch↔per-block
        // equivalence on burst patterns is property-pinned in
        // `tests/substrate_props.rs`).
        let mut dirty_idx: Vec<usize> = Vec::new();
        let mut dirty: Vec<BitBuf> = Vec::new();
        for (i, pat) in patterns.iter().enumerate() {
            if pat.count_ones() == 0 {
                tally.clean += 1;
            } else {
                dirty_idx.push(i);
                dirty.push(pat.clone());
            }
        }
        let outcomes = code.decode_blocks(&mut dirty);
        for (&block, outcome) in dirty_idx.iter().zip(&outcomes) {
            match outcome {
                DecodeOutcome::Clean => tally.clean += 1,
                DecodeOutcome::Corrected(_) => tally.corrected += 1,
                DecodeOutcome::Uncorrectable => {
                    tally.uncorrectable += 1;
                    let start = block as u64 * DATA_BITS as u64;
                    for f in patterns[block].iter_ones() {
                        if f < DATA_BITS && start + (f as u64) < bits {
                            flip_stream_bit(data, start + f as u64);
                        }
                    }
                }
            }
        }
        tally
    }
}

impl Substrate for BurstErasure {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn bits_per_cell(&self) -> u32 {
        self.cfg.bits_per_cell
    }

    fn raw_ber(&self) -> f64 {
        (0.5 * self.page_marginal() + self.cfg.iid_ber).min(0.5)
    }

    fn overhead(&self, t: usize) -> f64 {
        if t == 0 {
            0.0
        } else if self.cfg.interleaved_bch {
            Bch::cached(t).overhead()
        } else {
            Rs::cached(t).overhead()
        }
    }

    fn block_failure_rate(&self, t: usize) -> f64 {
        // I.i.d. approximation over symbols/bits: after deep
        // interleaving, one codeword's units are nearly independent.
        if t == 0 {
            return uber::binomial_tail(DATA_BITS as u64, self.raw_ber(), 0);
        }
        if self.cfg.interleaved_bch {
            let code = Bch::cached(t);
            return uber::binomial_tail(code.codeword_bits() as u64, self.raw_ber(), t as u64);
        }
        let code = Rs::cached(t);
        let p_erase = self.page_marginal();
        let p_err = 1.0 - (1.0 - self.cfg.iid_ber).powi(SYM_BITS as i32);
        // Budget: 2·errors + erasures ≤ parity. Approximate the mixed
        // count with one binomial at the budget-weighted rate.
        uber::binomial_tail(
            code.codeword_syms() as u64,
            (p_erase + 2.0 * p_err).min(1.0),
            code.parity_syms() as u64,
        )
    }

    fn corrupt_stream(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        _exact: bool,
        seed: u64,
    ) -> CorruptTally {
        vapp_obs::counter!("storage.substrate.streams", 1);
        if bits == 0 {
            return CorruptTally::default();
        }
        if t == 0 {
            self.corrupt_raw(data, bits, seed)
        } else if self.cfg.interleaved_bch {
            self.corrupt_interleaved_bch(data, bits, t, seed)
        } else {
            self.corrupt_rs(data, bits, t, seed)
        }
    }
}

/// Configuration for the [`DataInVideo`] substrate.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoChannelConfig {
    /// Quant level of the carrier encode (higher = lossier channel).
    pub crf: u8,
    /// Carrier frame width in pixels.
    pub frame_width: usize,
    /// Carrier frame height in pixels.
    pub frame_height: usize,
    /// Modulation cell side in pixels (one payload bit per cell²).
    pub cell: usize,
    /// Luma written for a 0 bit.
    pub low: u8,
    /// Luma written for a 1 bit.
    pub high: u8,
}

impl Default for VideoChannelConfig {
    fn default() -> Self {
        // Calibrated so the default channel actually loses bits
        // (~1.5e-4 raw BER): 1-pixel cells at full luma swing sit just
        // past the codec's quantization cliff at crf 43. Larger cells
        // or closer crf round-trip losslessly and make the substrate a
        // no-op.
        VideoChannelConfig {
            crf: 43,
            frame_width: 192,
            frame_height: 128,
            cell: 1,
            low: 48,
            high: 208,
        }
    }
}

/// Data-stored-as-video substrate (the Vstorage idea): payload bits
/// modulate luma cells of a carrier clip, which round-trips through our
/// own lossy codec at `crf`. Read-back thresholds each cell; quant noise
/// near the threshold flips bits, spatially clustered along block
/// boundaries. Damage is *content-dependent and deterministic* — the
/// seed is unused (see the module determinism contract) — and the RS
/// realization spreads it with the symbol interleaver.
#[derive(Debug)]
pub struct DataInVideo {
    cfg: VideoChannelConfig,
    calibrated: OnceLock<f64>,
}

impl DataInVideo {
    /// Builds the substrate.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (cell must divide both frame
    /// dimensions) or inverted luma levels.
    pub fn new(cfg: VideoChannelConfig) -> Self {
        assert!(cfg.cell > 0, "cell size");
        assert!(
            cfg.frame_width.is_multiple_of(cfg.cell) && cfg.frame_height.is_multiple_of(cfg.cell),
            "cell must tile the frame"
        );
        assert!(cfg.low < cfg.high, "luma levels inverted");
        DataInVideo {
            cfg,
            calibrated: OnceLock::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VideoChannelConfig {
        &self.cfg
    }

    /// Payload bits per carrier frame.
    fn capacity(&self) -> usize {
        (self.cfg.frame_width / self.cfg.cell) * (self.cfg.frame_height / self.cfg.cell)
    }

    /// Modulate → encode → reconstruct → threshold: returns the bits a
    /// reader gets back. Pure function of `(payload, cfg)`.
    fn roundtrip(&self, payload: &BitBuf) -> BitBuf {
        let _span = vapp_obs::span!("storage.video.roundtrip");
        let (w, h, cell) = (self.cfg.frame_width, self.cfg.frame_height, self.cfg.cell);
        let cells_x = w / cell;
        let cap = self.capacity();
        let nbits = payload.len();
        let frames = nbits.div_ceil(cap).max(1);
        let mut video = Video::new(w, h, 30.0);
        for f in 0..frames {
            let mut frame = Frame::filled(w, h, self.cfg.low);
            for i in 0..cap {
                let idx = f * cap + i;
                if idx >= nbits {
                    break;
                }
                if payload.get(idx) {
                    let (cx, cy) = (i % cells_x, i / cells_x);
                    for y in 0..cell {
                        for x in 0..cell {
                            frame
                                .plane_mut()
                                .set(cx * cell + x, cy * cell + y, self.cfg.high);
                        }
                    }
                }
            }
            video.push(frame);
        }
        // All-intra: every frame decodes independently, so payload
        // damage stays local to its frame (and the carrier stream has
        // no motion-compensation state to diverge on).
        let result = Encoder::new(EncoderConfig {
            crf: self.cfg.crf,
            keyint: 1,
            bframes: 0,
            ..EncoderConfig::default()
        })
        .encode(&video);
        vapp_obs::counter!("storage.substrate.video.carrier_bits", nbits as u64);
        let thresh = (self.cfg.low as u32 + self.cfg.high as u32) / 2;
        let mut out = BitBuf::zeroed(nbits);
        for (f, frame) in result.reconstruction.frames().iter().enumerate() {
            for i in 0..cap {
                let idx = f * cap + i;
                if idx >= nbits {
                    break;
                }
                let (cx, cy) = (i % cells_x, i / cells_x);
                let mut sum = 0u32;
                for y in 0..cell {
                    for x in 0..cell {
                        sum += frame.plane().get(cx * cell + x, cy * cell + y) as u32;
                    }
                }
                if sum >= thresh * (cell * cell) as u32 {
                    out.set(idx, true);
                }
            }
        }
        out
    }
}

/// Reads data symbol `gs` (10 bits, MSB-first) from a protection stream.
fn read_stream_sym(data: &[u8], bits: u64, gs: usize) -> u16 {
    let mut v = 0u16;
    for b in 0..SYM_BITS {
        let pos = (gs * SYM_BITS + b) as u64;
        let bit = if pos < bits {
            (data[(pos / 8) as usize] >> (7 - pos % 8)) & 1
        } else {
            0
        };
        v = (v << 1) | bit as u16;
    }
    v
}

impl Substrate for DataInVideo {
    fn name(&self) -> &'static str {
        "video"
    }

    fn bits_per_cell(&self) -> u32 {
        // One payload bit per modulation cell: the carrier's pixel cost
        // is the "cell" of this medium.
        1
    }

    fn raw_ber(&self) -> f64 {
        // Calibrated once per substrate: round-trip a fixed pseudo-random
        // payload and measure the flip fraction. Deterministic.
        *self.calibrated.get_or_init(|| {
            let n = 16 * self.capacity().max(1024);
            let mut rng = StdRng::seed_from_u64(0xDA7A_1DE0);
            let mut payload = BitBuf::zeroed(n);
            for i in 0..n {
                payload.set(i, rng.random_bool(0.5));
            }
            let back = self.roundtrip(&payload);
            payload.hamming_distance(&back) as f64 / n as f64
        })
    }

    fn overhead(&self, t: usize) -> f64 {
        if t == 0 {
            0.0
        } else {
            Rs::cached(t).overhead()
        }
    }

    fn block_failure_rate(&self, t: usize) -> f64 {
        // I.i.d. approximation; transcode damage clusters along coding
        // blocks, so this underestimates the tails — the round-trip
        // simulator is the ground truth.
        let ber = self.raw_ber();
        if t == 0 {
            return uber::binomial_tail(DATA_BITS as u64, ber, 0);
        }
        let code = Rs::cached(t);
        let p_sym = 1.0 - (1.0 - ber).powi(SYM_BITS as i32);
        uber::binomial_tail(code.codeword_syms() as u64, p_sym, t as u64)
    }

    fn corrupt_stream(
        &self,
        data: &mut [u8],
        bits: u64,
        t: usize,
        _exact: bool,
        _seed: u64,
    ) -> CorruptTally {
        vapp_obs::counter!("storage.substrate.streams", 1);
        let mut tally = CorruptTally::default();
        if bits == 0 {
            return tally;
        }
        if t == 0 {
            // Unprotected: the data bits are the carrier payload.
            let mut carrier = BitBuf::zeroed(bits as usize);
            for pos in 0..bits as usize {
                if (data[pos / 8] >> (7 - pos % 8)) & 1 == 1 {
                    carrier.set(pos, true);
                }
            }
            let back = self.roundtrip(&carrier);
            for pos in 0..bits as usize {
                if carrier.get(pos) != back.get(pos) {
                    flip_stream_bit(data, pos as u64);
                    tally.flips += 1;
                }
            }
            return tally;
        }
        // RS-protected: materialize real codewords (transcode damage
        // depends on content, so — unlike the i.i.d. channels — the
        // pattern trick alone cannot model it), interleave symbols
        // column-major, round-trip, decode the read-back difference.
        let code = Rs::cached(t);
        let k = RS_DATA_SYMS;
        let p = code.parity_syms();
        let n = code.codeword_syms();
        let total_syms = (bits as usize).div_ceil(SYM_BITS);
        let cws = total_syms.div_ceil(k).max(1);
        let phys_syms = cws * n;
        let il = Interleaver::new(cws, phys_syms);

        let cwords: Vec<Vec<u16>> = (0..cws)
            .map(|c| {
                let mut d = vec![0u16; k];
                for (i, sym) in d.iter_mut().enumerate() {
                    let gs = c * k + i;
                    if gs < total_syms {
                        *sym = read_stream_sym(data, bits, gs);
                    }
                }
                code.encode(&d)
            })
            .collect();

        let mut carrier = BitBuf::zeroed(phys_syms * SYM_BITS);
        for phys in 0..phys_syms {
            let l = il.inverse(phys);
            let v = cwords[l / n][l % n];
            for b in 0..SYM_BITS {
                if (v >> (SYM_BITS - 1 - b)) & 1 == 1 {
                    carrier.set(phys * SYM_BITS + b, true);
                }
            }
        }
        let back = self.roundtrip(&carrier);
        tally.flips = carrier.hamming_distance(&back) as u64;

        // Received-minus-sent error patterns, de-interleaved.
        let mut patterns: Vec<Vec<u16>> = vec![vec![0u16; n]; cws];
        for phys in 0..phys_syms {
            let mut diff = 0u16;
            for b in 0..SYM_BITS {
                let pos = phys * SYM_BITS + b;
                if carrier.get(pos) != back.get(pos) {
                    diff |= 1 << (SYM_BITS - 1 - b);
                }
            }
            if diff != 0 {
                let l = il.inverse(phys);
                patterns[l / n][l % n] = diff;
            }
        }

        vapp_obs::counter!("storage.substrate.rs.codewords", cws as u64);
        for (c, pattern) in patterns.iter_mut().enumerate() {
            if pattern.iter().all(|&v| v == 0) {
                tally.clean += 1;
                continue;
            }
            match code.decode(pattern, &[]) {
                DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => tally.corrected += 1,
                DecodeOutcome::Uncorrectable => {
                    tally.uncorrectable += 1;
                    for (j, &v) in pattern.iter().enumerate().skip(p) {
                        if v == 0 {
                            continue;
                        }
                        let gs = c * k + (j - p);
                        if gs >= total_syms {
                            continue;
                        }
                        for b in 0..SYM_BITS {
                            if (v >> (SYM_BITS - 1 - b)) & 1 == 1 {
                                let pos = (gs * SYM_BITS + b) as u64;
                                if pos < bits {
                                    flip_stream_bit(data, pos);
                                }
                            }
                        }
                    }
                }
            }
        }
        let reg = vapp_obs::current();
        reg.counter("storage.substrate.rs.clean").add(tally.clean);
        reg.counter("storage.substrate.rs.corrected")
            .add(tally.corrected);
        reg.counter("storage.substrate.rs.uncorrectable")
            .add(tally.uncorrectable);
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random::<u8>()).collect()
    }

    #[test]
    fn mlc_trait_matches_iid_engine() {
        let sub = MlcPcm::new(2e-2);
        let bits = 4096u64;
        let mut a = pattern_bytes(512, 9);
        let mut b = a.clone();
        let ta = sub.corrupt_stream(&mut a, bits, 6, true, 42);
        let tb = corrupt_iid_bch(&mut b, bits, 6, true, 2e-2, 42);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn burst_rs_is_deterministic_and_seed_sensitive() {
        let sub = BurstErasure::new(BurstConfig {
            page_loss: 0.02,
            ..BurstConfig::default()
        });
        let bits = 40_000u64;
        let mut a = pattern_bytes(5000, 1);
        let mut b = a.clone();
        let mut c = a.clone();
        let ta = sub.corrupt_stream(&mut a, bits, 6, true, 7);
        let tb = sub.corrupt_stream(&mut b, bits, 6, true, 7);
        assert_eq!(a, b, "same seed, same damage");
        assert_eq!(ta, tb);
        let _ = sub.corrupt_stream(&mut c, bits, 6, true, 8);
        assert!(ta.flips > 0, "2% page loss over 40k bits must hit");
    }

    #[test]
    fn burst_rs_erasures_beat_unprotected() {
        // With realistic loss, RS-protected data survives what raw
        // data does not.
        let sub = BurstErasure::new(BurstConfig {
            page_loss: 5e-3,
            ..BurstConfig::default()
        });
        let bits = 80_000u64;
        let mut protected = pattern_bytes(10_000, 2);
        let orig = protected.clone();
        let mut raw = protected.clone();
        let tp = sub.corrupt_stream(&mut protected, bits, 8, true, 3);
        let tr = sub.corrupt_stream(&mut raw, bits, 0, true, 3);
        assert!(tp.flips > 0 || tr.flips > 0);
        // RS with erasure decoding should correct everything here.
        assert_eq!(tp.uncorrectable, 0, "{tp:?}");
        assert_eq!(protected, orig);
        assert_ne!(raw, orig, "unprotected page loss garbles data");
    }

    #[test]
    fn burst_interleaved_bch_runs_and_is_deterministic() {
        let sub = BurstErasure::new(BurstConfig {
            page_loss: 0.01,
            interleaved_bch: true,
            depth: 16,
            ..BurstConfig::default()
        });
        let bits = 30_000u64;
        let mut a = pattern_bytes(3750, 4);
        let mut b = a.clone();
        let ta = sub.corrupt_stream(&mut a, bits, 6, true, 11);
        let tb = sub.corrupt_stream(&mut b, bits, 6, true, 11);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        assert_eq!(
            ta.clean + ta.corrected + ta.uncorrectable,
            bits.div_ceil(DATA_BITS as u64)
        );
    }

    #[test]
    fn video_roundtrip_flips_some_bits_at_high_crf() {
        let sub = DataInVideo::new(VideoChannelConfig {
            frame_width: 64,
            frame_height: 32,
            crf: 46,
            ..VideoChannelConfig::default()
        });
        let ber = sub.raw_ber();
        assert!(ber > 0.0, "crf 46 must flip something, got {ber}");
        assert!(ber < 0.5, "channel must still carry information");
        // Calibration is cached and stable.
        assert_eq!(sub.raw_ber(), ber);
    }

    #[test]
    fn video_substrate_is_deterministic_and_seed_independent() {
        let sub = DataInVideo::new(VideoChannelConfig {
            frame_width: 64,
            frame_height: 32,
            crf: 44,
            ..VideoChannelConfig::default()
        });
        let bits = 6000u64;
        let mut a = pattern_bytes(750, 5);
        let mut b = a.clone();
        let ta = sub.corrupt_stream(&mut a, bits, 4, true, 1);
        let tb = sub.corrupt_stream(&mut b, bits, 4, true, 999);
        assert_eq!(a, b, "video damage is content-determined");
        assert_eq!(ta, tb);
    }

    #[test]
    fn substrate_objects_are_usable_behind_arc_dyn() {
        let subs: Vec<Arc<dyn Substrate>> =
            vec![mlc_pcm(1e-3), slc(), burst_erasure(BurstConfig::default())];
        for s in subs {
            assert!(s.bits_per_cell() >= 1);
            assert!(s.overhead(6) > 0.0);
            assert!(s.block_failure_rate(6) <= 1.0);
            assert!(s.raw_ber() < 0.5);
        }
    }
}
