//! A fixed-capacity block bank: the physical device handle the archive
//! layer shards over.
//!
//! A [`Bank`] is one independent failure/capacity domain: a flat array
//! of 512-bit blocks ([`BLOCK_BYTES`] each) on one error [`Substrate`].
//! Writes land pristine; damage is applied on *read* through
//! [`Bank::decode_read`], which hands the read-back copy to the bank's
//! substrate with the caller's protection strength and seed — so a read
//! is a pure function of `(stored bytes, bits, t, seed)` and re-reading
//! (e.g. after a cache eviction) reproduces the same corrected bytes.
//! On the i.i.d. substrates the exact path decodes in 64-block batch
//! groups (see [`crate::batch`]).
//!
//! Extent bookkeeping (what lives where) is deliberately *not* here:
//! the archive's namespace owns placement, the bank owns bytes.

use std::sync::Arc;

use crate::bch::DATA_BITS;
use crate::channel::{CorruptTally, Substrate};

/// Bytes per bank block (one 512-bit BCH data block).
pub const BLOCK_BYTES: usize = DATA_BITS / 8;

/// One sharded storage bank: `blocks ×` [`BLOCK_BYTES`] bytes on a
/// pluggable error substrate.
#[derive(Clone, Debug)]
pub struct Bank {
    data: Vec<u8>,
    substrate: Arc<dyn Substrate>,
}

impl Bank {
    /// Creates an all-zero bank with `blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics on a zero-block bank.
    pub fn new(blocks: u64, substrate: Arc<dyn Substrate>) -> Self {
        assert!(blocks > 0, "bank needs at least one block");
        Bank {
            data: vec![0u8; blocks as usize * BLOCK_BYTES],
            substrate,
        }
    }

    /// Number of blocks in the bank.
    pub fn blocks(&self) -> u64 {
        (self.data.len() / BLOCK_BYTES) as u64
    }

    /// The error substrate this bank stores onto.
    pub fn substrate(&self) -> &Arc<dyn Substrate> {
        &self.substrate
    }

    /// Writes `bytes` starting at `start_block`. A partial tail block is
    /// zero-padded (blocks are the allocation granularity).
    ///
    /// # Panics
    ///
    /// Panics if the write runs past the end of the bank.
    pub fn write(&mut self, start_block: u64, bytes: &[u8]) {
        let start = start_block as usize * BLOCK_BYTES;
        let blocks = bytes.len().div_ceil(BLOCK_BYTES);
        let end = start + blocks * BLOCK_BYTES;
        assert!(end <= self.data.len(), "write past end of bank");
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        self.data[start + bytes.len()..end].fill(0);
    }

    /// Appends `len` raw stored bytes starting at `start_block` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the read runs past the end of the bank.
    pub fn read_into(&self, start_block: u64, len: usize, out: &mut Vec<u8>) {
        let start = start_block as usize * BLOCK_BYTES;
        assert!(start + len <= self.data.len(), "read past end of bank");
        out.extend_from_slice(&self.data[start..start + len]);
    }

    /// Moves `n_blocks` blocks from `src_block` to `dst_block`
    /// (compaction primitive; overlapping moves are handled like
    /// `memmove`).
    ///
    /// # Panics
    ///
    /// Panics if either range runs past the end of the bank.
    pub fn move_blocks(&mut self, src_block: u64, dst_block: u64, n_blocks: u64) {
        let n = n_blocks as usize * BLOCK_BYTES;
        let src = src_block as usize * BLOCK_BYTES;
        let dst = dst_block as usize * BLOCK_BYTES;
        assert!(src + n <= self.data.len() && dst + n <= self.data.len());
        self.data.copy_within(src..src + n, dst);
    }

    /// Runs the bank's error channel over a read-back buffer: `bits`
    /// live payload bits protected at strength `t`, damage drawn from
    /// `seed`. Always takes the exact block machinery (the batch-BCH
    /// engine on i.i.d. substrates), never the analytic shortcut — a
    /// bank read returns real decoded bytes, not a statistical model.
    pub fn decode_read(&self, data: &mut [u8], bits: u64, t: usize, seed: u64) -> CorruptTally {
        self.substrate.corrupt_stream(data, bits, t, true, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::mlc_pcm;

    fn bytes(n: usize, seed: u64) -> Vec<u8> {
        use vapp_rand::rngs::StdRng;
        use vapp_rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<u8>()).collect()
    }

    #[test]
    fn write_read_roundtrip_and_tail_padding() {
        let mut bank = Bank::new(8, mlc_pcm(0.0));
        let payload = bytes(100, 1); // 1 full block + 36-byte tail
        bank.write(2, &payload);
        let mut back = Vec::new();
        bank.read_into(2, 100, &mut back);
        assert_eq!(back, payload);
        // The tail block's padding reads back as zero.
        let mut tail = Vec::new();
        bank.read_into(2, 2 * BLOCK_BYTES, &mut tail);
        assert!(tail[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn move_blocks_preserves_bytes() {
        let mut bank = Bank::new(16, mlc_pcm(0.0));
        let payload = bytes(3 * BLOCK_BYTES, 2);
        bank.write(10, &payload);
        bank.move_blocks(10, 1, 3);
        let mut back = Vec::new();
        bank.read_into(1, payload.len(), &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn decode_read_is_a_pure_function_of_the_seed() {
        let bank = Bank::new(32, mlc_pcm(2e-2));
        let stored = bytes(20 * BLOCK_BYTES, 3);
        let bits = (stored.len() * 8) as u64;
        let mut a = stored.clone();
        let mut b = stored.clone();
        let ta = bank.decode_read(&mut a, bits, 6, 77);
        let tb = bank.decode_read(&mut b, bits, 6, 77);
        assert_eq!(a, b, "same seed must reproduce the same read");
        assert_eq!(ta, tb);
        let mut c = stored.clone();
        let tc = bank.decode_read(&mut c, bits, 6, 78);
        assert!(ta.flips > 0 && tc.flips > 0, "2e-2 over 10k bits must flip");
    }

    #[test]
    #[should_panic(expected = "write past end of bank")]
    fn oversized_write_panics() {
        let mut bank = Bank::new(2, mlc_pcm(0.0));
        bank.write(1, &bytes(2 * BLOCK_BYTES, 4));
    }
}
