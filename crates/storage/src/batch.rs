//! Bitsliced batch BCH kernels: 64 blocks per `u64` op.
//!
//! The per-block decoder in [`crate::bch`] walks one codeword at a time;
//! at the pipeline's realistic error rates most of that work is
//! re-proving blocks clean. This module pivots the problem into a
//! struct-of-arrays layout (`BlockBatch`): up to 64 codewords are
//! transposed into one bit-*plane* per codeword bit position, so bit `b`
//! of plane `k` is bit `k` of block `b`. Over the planes,
//!
//! * **clean detection** re-derives every block's parity in one pass
//!   (plane `k` XORs into the parity rows selected by
//!   `R_k = x^{parity+k} mod g`) and diffs against the stored parity
//!   planes — the OR of the diffs is a 64-bit dirty-lane mask,
//! * **syndromes** accumulate bitsliced for the *odd* powers
//!   (`S_j += α^{j·deg(k)}` per set plane, as 10 accumulator planes per
//!   syndrome) and derive the even powers by the Frobenius identity
//!   `S_2j = S_j²` — squaring is GF(2)-linear, a fixed 10×10 bit matrix
//!   applied plane-wise,
//! * only **dirty lanes** fall back to the scalar Berlekamp–Massey /
//!   closed-form locators / Chien search shared with the per-block path,
//!   reading their 2t syndromes straight out of the planes.
//!
//! Zero planes are skipped everywhere, so the same engine is fast both
//! for dense content batches (throughput benches) and for the pipeline's
//! sparse error-pattern batches. The per-block path remains the
//! property-tested reference (`tests/batch_equivalence.rs`).
//!
//! With the default-off `arch-intrinsics` cargo feature the plane
//! reductions use explicit `core::arch` AVX2 (runtime-detected, scalar
//! fallback elsewhere); the workspace stays dependency-free either way.

use crate::bch::{
    berlekamp_massey, chien_search, generator_poly, locate_deg1, locate_deg2, Bch, DecodeOutcome,
    DATA_BITS,
};
use crate::bits::{transpose64, words_for, BitBuf};
use crate::gf::Gf1024;

/// Blocks per batch: one lane per bit of the plane words.
pub const LANES: usize = 64;

/// GF(2^10) elements are 10 bits wide: planes per syndrome.
const GF_BITS: usize = 10;

/// Precomputed bitslicing tables for one code strength, shared
/// process-wide per `t` (they depend only on the generator).
#[derive(Debug)]
struct BatchTables {
    /// CSR over data bits: `par_pos[par_off[k]..par_off[k+1]]` lists the
    /// parity-bit positions set in `R_k = x^{parity+k} mod g`.
    par_off: Vec<u32>,
    par_pos: Vec<u16>,
    /// `α^{j·deg(k)}` for the odd syndromes `j = 2i+1`, laid out
    /// `[k][i]` over all `n` codeword bit positions.
    syn_const: Vec<u16>,
    /// Frobenius matrix: `sq[u]` = square of the basis element `x^u`.
    sq: [u16; GF_BITS],
}

/// Process-wide table cache, one entry per code strength (the tables
/// depend only on `t`, so `Bch::new` clones share them too).
fn batch_tables(t: usize) -> &'static BatchTables {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static REGISTRY: OnceLock<Mutex<HashMap<usize, &'static BatchTables>>> = OnceLock::new();
    let mut map = REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("batch table registry poisoned");
    map.entry(t)
        .or_insert_with(|| Box::leak(Box::new(build_batch_tables(t))))
}

fn build_batch_tables(t: usize) -> BatchTables {
    let gf = Gf1024::get();
    let generator = generator_poly(t);
    let parity = generator.len() - 1;
    let n = DATA_BITS + parity;
    let pw = parity.div_ceil(64);
    let top_mask = if parity.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (parity % 64)) - 1
    };
    // g minus its monic top term: x^parity ≡ g_low (mod g).
    let mut g_low = vec![0u64; pw];
    for (k, &c) in generator.iter().enumerate().take(parity) {
        if c {
            g_low[k / 64] |= 1u64 << (k % 64);
        }
    }
    // R_k by repeated ·x (mod g), emitted as a CSR of set positions.
    let mut par_off = Vec::with_capacity(DATA_BITS + 1);
    let mut par_pos = Vec::new();
    let mut cur = g_low.clone();
    for k in 0..DATA_BITS {
        if k > 0 {
            let carry = (cur[(parity - 1) / 64] >> ((parity - 1) % 64)) & 1 == 1;
            for w in (1..pw).rev() {
                cur[w] = (cur[w] << 1) | (cur[w - 1] >> 63);
            }
            cur[0] <<= 1;
            cur[pw - 1] &= top_mask;
            if carry {
                for w in 0..pw {
                    cur[w] ^= g_low[w];
                }
            }
        }
        par_off.push(par_pos.len() as u32);
        for (w, &word) in cur.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                par_pos.push((w * 64 + bits.trailing_zeros() as usize) as u16);
                bits &= bits - 1;
            }
        }
    }
    par_off.push(par_pos.len() as u32);

    // Odd-syndrome constants per codeword bit. Bit k of the BitBuf
    // layout is polynomial degree `parity + k` (data) or `k - 512`
    // (parity bits).
    let mut syn_const = vec![0u16; n * t];
    for k in 0..n {
        let deg = if k < DATA_BITS {
            parity + k
        } else {
            k - DATA_BITS
        };
        for i in 0..t {
            syn_const[k * t + i] = gf.alpha_pow((2 * i + 1) * deg);
        }
    }

    let mut sq = [0u16; GF_BITS];
    for (u, s) in sq.iter_mut().enumerate() {
        *s = gf.square(1 << u);
    }

    BatchTables {
        par_off,
        par_pos,
        syn_const,
        sq,
    }
}

/// Up to 64 codewords of one code, stored as bit-planes.
#[derive(Clone, Debug)]
pub struct BlockBatch {
    /// One `u64` per codeword bit position; bit `b` = that bit of lane `b`.
    planes: Vec<u64>,
    lanes: usize,
}

impl BlockBatch {
    /// An all-zero batch of `lanes` codewords (each the zero codeword).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`LANES`].
    pub fn zeroed(code: &Bch, lanes: usize) -> Self {
        assert!((1..=LANES).contains(&lanes), "lanes must be 1..=64");
        BlockBatch {
            planes: vec![0u64; code.codeword_bits()],
            lanes,
        }
    }

    /// Transposes up to 64 codewords into planes.
    ///
    /// # Panics
    ///
    /// Panics if `cws` is empty, longer than [`LANES`], or any codeword
    /// has the wrong length for `code`.
    pub fn from_codewords(code: &Bch, cws: &[BitBuf]) -> Self {
        let n = code.codeword_bits();
        let mut batch = BlockBatch::zeroed(code, cws.len());
        for (w, planes) in batch.planes.chunks_mut(64).enumerate() {
            let mut m = [0u64; 64];
            for (lane, cw) in cws.iter().enumerate() {
                assert_eq!(cw.len(), n, "codeword length mismatch");
                m[lane] = cw.words()[w];
            }
            transpose64(&mut m);
            planes.copy_from_slice(&m[..planes.len()]);
        }
        batch
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Flips codeword bit `bit` of lane `lane` — how the pipeline builds
    /// sparse error-pattern batches without materializing codewords.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `bit` is out of range.
    #[inline]
    pub fn flip(&mut self, lane: usize, bit: usize) {
        assert!(lane < self.lanes, "lane out of range");
        self.planes[bit] ^= 1u64 << lane;
    }

    /// Reads codeword bit `bit` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `bit` is out of range.
    #[inline]
    pub fn get(&self, lane: usize, bit: usize) -> bool {
        assert!(lane < self.lanes, "lane out of range");
        (self.planes[bit] >> lane) & 1 == 1
    }

    /// Transposes the planes back into per-lane codewords, overwriting
    /// `cws` (which must have one entry per active lane).
    ///
    /// # Panics
    ///
    /// Panics if `cws.len()` differs from the active lane count.
    pub fn write_codewords(&self, code: &Bch, cws: &mut [BitBuf]) {
        assert_eq!(cws.len(), self.lanes, "lane count mismatch");
        let n = code.codeword_bits();
        let wpl = words_for(n);
        let mut words = vec![vec![0u64; wpl]; self.lanes];
        for (w, planes) in self.planes.chunks(64).enumerate() {
            let mut m = [0u64; 64];
            m[..planes.len()].copy_from_slice(planes);
            transpose64(&mut m);
            for (lane, lw) in words.iter_mut().enumerate() {
                lw[w] = m[lane];
            }
        }
        for (cw, lw) in cws.iter_mut().zip(words) {
            *cw = BitBuf::from_words(lw, n);
        }
    }
}

impl Bch {
    /// Encodes up to 64 data blocks per transpose through the bitsliced
    /// parity kernel. Accepts any number of blocks (chunked internally);
    /// output codewords are bit-identical to per-block [`Bch::encode`].
    ///
    /// # Panics
    ///
    /// Panics if any block is not exactly 512 bits.
    pub fn encode_batch(&self, blocks: &[BitBuf]) -> Vec<BitBuf> {
        let tb = batch_tables(self.t());
        let parity = self.parity_bits();
        let mut out = Vec::with_capacity(blocks.len());
        for chunk in blocks.chunks(LANES) {
            // Transpose the data words into 512 planes.
            let mut planes = [0u64; DATA_BITS];
            for (w, group) in planes.chunks_mut(64).enumerate() {
                let mut m = [0u64; 64];
                for (lane, data) in chunk.iter().enumerate() {
                    assert_eq!(data.len(), DATA_BITS, "data must be 512 bits");
                    m[lane] = data.words()[w];
                }
                transpose64(&mut m);
                group.copy_from_slice(&m);
            }
            let par = parity_planes(&planes, tb, parity);
            // Assemble codewords: original data words + transposed parity.
            let pw = parity.div_ceil(64);
            let mut pwords = vec![[0u64; 64]; pw];
            for (w, m) in pwords.iter_mut().enumerate() {
                let avail = (parity - w * 64).min(64);
                m[..avail].copy_from_slice(&par[w * 64..w * 64 + avail]);
                transpose64(m);
            }
            for (lane, data) in chunk.iter().enumerate() {
                let mut words = Vec::with_capacity(DATA_BITS / 64 + pw);
                words.extend_from_slice(data.words());
                for m in &pwords {
                    words.push(m[lane]);
                }
                out.push(BitBuf::from_words(words, self.codeword_bits()));
            }
        }
        out
    }

    /// Decodes a batch in place: bitsliced clean detection and syndrome
    /// accumulation across all lanes, scalar locator fallback only for
    /// the dirty ones. Corrections are applied to the planes; outcomes
    /// (and the `storage.bch.*` tallies) match per-block [`Bch::decode`]
    /// lane for lane.
    ///
    /// # Panics
    ///
    /// Panics if the batch was built for a different code strength.
    pub fn decode_batch(&self, batch: &mut BlockBatch) -> Vec<DecodeOutcome> {
        let n = self.codeword_bits();
        assert_eq!(batch.planes.len(), n, "batch built for a different code");
        let tb = batch_tables(self.t());
        let parity = self.parity_bits();
        let lanes = batch.lanes;
        let _span = vapp_obs::span!("storage.batch.decode", lanes);
        let active: u64 = if lanes == LANES {
            !0
        } else {
            (1u64 << lanes) - 1
        };

        // Bitsliced clean check: recompute every lane's parity from the
        // data planes and diff against the stored parity planes. A lane
        // is dirty iff any diff bit is set — iff it is not a codeword.
        let data: &[u64; DATA_BITS] = batch.planes[..DATA_BITS].try_into().expect("plane layout");
        let par = parity_planes(data, tb, parity);
        let dirty = plane_ops::or_diff(&par, &batch.planes[DATA_BITS..]) & active;
        // Per-batch dirty-lane distribution: deterministic at a fixed
        // seed, so it doubles as a drift-gate signal for obs_report.
        vapp_obs::histogram!("storage.batch.dirty_lanes", u64::from(dirty.count_ones()));
        if dirty == 0 {
            vapp_obs::counter!("storage.bch.clean", lanes as u64);
            return vec![DecodeOutcome::Clean; lanes];
        }

        // Bitsliced syndromes: odd powers by table accumulation over the
        // nonzero planes, even powers by plane-wise Frobenius squaring.
        let t = self.t();
        let t2 = 2 * t;
        let mut sp = vec![0u64; t2 * GF_BITS];
        for (k, &p) in batch.planes.iter().enumerate() {
            if p == 0 {
                continue;
            }
            for (i, &c) in tb.syn_const[k * t..(k + 1) * t].iter().enumerate() {
                let base = 2 * i * GF_BITS; // syndrome j = 2i+1 lives at slot j-1
                let mut c = c;
                while c != 0 {
                    sp[base + c.trailing_zeros() as usize] ^= p;
                    c &= c - 1;
                }
            }
        }
        for j2 in (2..=t2).step_by(2) {
            let (src, dst) = sp.split_at_mut((j2 - 1) * GF_BITS);
            let src = &src[(j2 / 2 - 1) * GF_BITS..(j2 / 2 - 1) * GF_BITS + GF_BITS];
            for (u, &p) in src.iter().enumerate() {
                if p == 0 {
                    continue;
                }
                let mut c = tb.sq[u];
                while c != 0 {
                    dst[c.trailing_zeros() as usize] ^= p;
                    c &= c - 1;
                }
            }
        }

        // Scalar fallback per dirty lane: extract its syndromes from the
        // planes and run the shared BM / locator path.
        let gf = Gf1024::get();
        let mut outcomes = vec![DecodeOutcome::Clean; lanes];
        let (mut corrected, mut bits_corrected, mut uncorrectable) = (0u64, 0u64, 0u64);
        let mut m = dirty;
        let mut syn = vec![0u16; t2];
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            for (j, s) in syn.iter_mut().enumerate() {
                let mut v = 0u16;
                for (u, &p) in sp[j * GF_BITS..(j + 1) * GF_BITS].iter().enumerate() {
                    v |= (((p >> lane) & 1) as u16) << u;
                }
                *s = v;
            }
            // Parity mismatch implies nonzero syndromes; mirror the
            // per-block decoder's defensive clean path regardless.
            if syn.iter().all(|&s| s == 0) {
                continue;
            }
            let sigma = berlekamp_massey(&syn, gf);
            let deg = sigma.len() - 1;
            let positions = if deg == 0 || deg > t {
                None
            } else {
                match deg {
                    1 => locate_deg1(&sigma, n, gf),
                    2 => locate_deg2(&sigma, n, gf),
                    _ => chien_search(&sigma, n, gf),
                }
            };
            match positions {
                Some(positions) => {
                    for &k in &positions {
                        // Coefficient x^k: parity bit below `parity`,
                        // data bit above (same map as the scalar path).
                        let bit = if k < parity {
                            DATA_BITS + k
                        } else {
                            k - parity
                        };
                        batch.planes[bit] ^= 1u64 << lane;
                    }
                    outcomes[lane] = DecodeOutcome::Corrected(positions.len());
                    corrected += 1;
                    bits_corrected += positions.len() as u64;
                }
                None => {
                    outcomes[lane] = DecodeOutcome::Uncorrectable;
                    uncorrectable += 1;
                }
            }
        }
        let clean = lanes as u64 - corrected - uncorrectable;
        if clean > 0 {
            vapp_obs::counter!("storage.bch.clean", clean);
        }
        if corrected > 0 {
            vapp_obs::counter!("storage.bch.corrected", corrected);
            vapp_obs::counter!("storage.bch.bits_corrected", bits_corrected);
        }
        if uncorrectable > 0 {
            vapp_obs::counter!("storage.bch.uncorrectable", uncorrectable);
        }
        outcomes
    }

    /// Batch decode over owned codewords: transposes in, runs
    /// [`Bch::decode_batch`], transposes the (corrected) codewords back
    /// out. Chunked by [`LANES`], so any number of codewords works.
    ///
    /// # Panics
    ///
    /// Panics if any codeword has the wrong length.
    pub fn decode_blocks(&self, cws: &mut [BitBuf]) -> Vec<DecodeOutcome> {
        let mut out = Vec::with_capacity(cws.len());
        for chunk in cws.chunks_mut(LANES) {
            let mut batch = BlockBatch::from_codewords(self, chunk);
            out.extend(self.decode_batch(&mut batch));
            batch.write_codewords(self, chunk);
        }
        out
    }
}

/// Recomputed parity planes for a batch's 512 data planes: plane `j`
/// collects `Σ_k data[k]·R_k[j]` over the nonzero data planes.
fn parity_planes(data: &[u64; DATA_BITS], tb: &BatchTables, parity: usize) -> Vec<u64> {
    let mut par = vec![0u64; parity];
    for (k, &p) in data.iter().enumerate() {
        if p == 0 {
            continue;
        }
        let row = &tb.par_pos[tb.par_off[k] as usize..tb.par_off[k + 1] as usize];
        for &j in row {
            par[j as usize] ^= p;
        }
    }
    par
}

/// Plane reductions, with an AVX2 variant behind the `arch-intrinsics`
/// feature (runtime-dispatched; every other configuration gets the
/// portable scalar loop).
mod plane_ops {
    /// OR-reduction of the element-wise XOR of two plane slices — the
    /// dirty-lane mask of the clean check. `b` may be shorter than `a`
    /// is never allowed: lengths must match.
    pub fn or_diff(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        #[cfg(all(feature = "arch-intrinsics", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                return unsafe { avx2::or_diff(a, b) };
            }
        }
        or_diff_scalar(a, b)
    }

    pub(super) fn or_diff_scalar(a: &[u64], b: &[u64]) -> u64 {
        a.iter().zip(b).fold(0u64, |acc, (&x, &y)| acc | (x ^ y))
    }

    #[cfg(all(feature = "arch-intrinsics", target_arch = "x86_64"))]
    mod avx2 {
        use std::arch::x86_64::{
            __m256i, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_or_si256,
            _mm256_setzero_si256, _mm256_xor_si256,
        };

        /// # Safety
        ///
        /// Caller must ensure the CPU supports AVX2.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn or_diff(a: &[u64], b: &[u64]) -> u64 {
            let mut acc = _mm256_setzero_si256();
            let lanes = a.len() / 4;
            for i in 0..lanes {
                // SAFETY: `i * 4 + 3 < a.len()` by the loop bound; loadu
                // has no alignment requirement.
                let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
                acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
            }
            let mut out = (_mm256_extract_epi64(acc, 0)
                | _mm256_extract_epi64(acc, 1)
                | _mm256_extract_epi64(acc, 2)
                | _mm256_extract_epi64(acc, 3)) as u64;
            for i in lanes * 4..a.len() {
                out |= a[i] ^ b[i];
            }
            out
        }
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn or_diff_dispatch_matches_scalar() {
            let a: Vec<u64> = (0..67u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let mut b = a.clone();
            assert_eq!(super::or_diff(&a, &b), 0);
            b[13] ^= 1 << 7;
            b[66] ^= 1 << 63;
            let expect = super::or_diff_scalar(&a, &b);
            assert_eq!(super::or_diff(&a, &b), expect);
            assert_eq!(expect, (1 << 7) | (1 << 63));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_data(seed: u64) -> BitBuf {
        let mut d = BitBuf::zeroed(DATA_BITS);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in 0..DATA_BITS {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            d.set(i, (s >> 60) & 1 == 1);
        }
        d
    }

    #[test]
    fn encode_batch_matches_per_block() {
        for t in [6usize, 10, 16] {
            let code = Bch::cached(t);
            // 70 blocks: one full 64-lane batch plus a partial tail.
            let blocks: Vec<BitBuf> = (0..70).map(|i| pattern_data(i * 31 + t as u64)).collect();
            let batch = code.encode_batch(&blocks);
            for (i, block) in blocks.iter().enumerate() {
                assert_eq!(batch[i], code.encode(block), "t={t} block {i}");
            }
        }
    }

    #[test]
    fn codeword_transpose_round_trips() {
        let code = Bch::cached(6);
        let cws: Vec<BitBuf> = (0..17).map(|i| code.encode(&pattern_data(i))).collect();
        let batch = BlockBatch::from_codewords(code, &cws);
        assert_eq!(batch.lanes(), 17);
        assert_eq!(batch.get(3, 0), cws[3].get(0));
        let mut out = vec![BitBuf::new(); 17];
        batch.write_codewords(code, &mut out);
        assert_eq!(out, cws);
    }

    #[test]
    fn all_clean_batch_short_circuits() {
        let code = Bch::cached(6);
        let mut cws: Vec<BitBuf> = (0..5).map(|i| code.encode(&pattern_data(i + 40))).collect();
        let expect = cws.clone();
        let outcomes = code.decode_blocks(&mut cws);
        assert!(outcomes.iter().all(|&o| o == DecodeOutcome::Clean));
        assert_eq!(cws, expect);
    }

    #[test]
    fn mixed_batch_corrects_dirty_lanes_only() {
        let code = Bch::cached(10);
        let clean: Vec<BitBuf> = (0..LANES)
            .map(|i| code.encode(&pattern_data(i as u64)))
            .collect();
        let mut cws = clean.clone();
        // Lanes 0, 7, 63: correctable; lane 20: beyond the radius.
        for (lane, errs) in [(0usize, 1usize), (7, 2), (63, 10)] {
            for e in 0..errs {
                cws[lane].flip((e * 101 + 17) % code.codeword_bits());
            }
        }
        let n = code.codeword_bits();
        let mut reference = cws[20].clone();
        for e in 0..25 {
            cws[20].flip((e * 37 + 3) % n);
            reference.flip((e * 37 + 3) % n);
        }
        let outcomes = code.decode_blocks(&mut cws);
        assert_eq!(outcomes[0], DecodeOutcome::Corrected(1));
        assert_eq!(outcomes[7], DecodeOutcome::Corrected(2));
        assert_eq!(outcomes[63], DecodeOutcome::Corrected(10));
        for lane in [0usize, 7, 63] {
            assert_eq!(cws[lane], clean[lane], "lane {lane} not restored");
        }
        // The overloaded lane must behave exactly like per-block decode.
        let expect_out = code.decode(&mut reference);
        assert_eq!(outcomes[20], expect_out);
        assert_eq!(cws[20], reference);
        for lane in (1..LANES).filter(|&l| ![7, 20, 63].contains(&l)) {
            assert_eq!(outcomes[lane], DecodeOutcome::Clean);
            assert_eq!(cws[lane], clean[lane], "clean lane {lane} moved");
        }
    }

    #[test]
    fn sparse_error_batch_decodes_like_shifted_codewords() {
        // The pipeline identity: decoding the bare error pattern must
        // yield the same outcome as decoding codeword + error, because
        // syndromes are linear and vanish on codewords.
        let code = Bch::cached(6);
        let n = code.codeword_bits();
        let cases: &[&[usize]] = &[
            &[5],
            &[0, 511, 512, n - 1],
            &[1, 2, 3, 4, 5, 6, 7],
            &[100, 200, 300, 400, 450, 500],
        ];
        let mut batch = BlockBatch::zeroed(code, cases.len());
        for (lane, flips) in cases.iter().enumerate() {
            for &f in *flips {
                batch.flip(lane, f);
            }
        }
        let sparse = code.decode_batch(&mut batch);
        for (lane, flips) in cases.iter().enumerate() {
            let mut cw = code.encode(&pattern_data(lane as u64 + 9));
            for &f in *flips {
                cw.flip(f);
            }
            assert_eq!(sparse[lane], code.decode(&mut cw), "lane {lane}");
        }
    }
}
