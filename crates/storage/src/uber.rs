//! Uncorrectable-error-rate math (paper Fig. 8's right-hand axis).
//!
//! A BCH-X code over an n-bit block at raw bit error rate p fails when
//! more than X bits flip; the failure probability is the binomial tail
//! `P(Bin(n, p) > X)`, computed here in the log domain so rates down to
//! 1e-16 and beyond stay accurate.

use crate::bch::Bch;

/// Natural log of the binomial coefficient C(n, k) via `ln_gamma`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma((n + 1) as f64) - ln_gamma((k + 1) as f64) - ln_gamma((n - k + 1) as f64)
}

/// Lanczos approximation of ln Γ(x) (x > 0), ~1e-13 accurate.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `P(Bin(n, p) > t)` — probability of more than `t` errors among `n`
/// independent bits at per-bit error rate `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_tail(n: u64, p: f64, t: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 || t >= n {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    // Sum k = t+1 .. n of exp(ln C(n,k) + k ln p + (n-k) ln(1-p)).
    // The terms fall off geometrically for k >> np, so cap the summation.
    let lp = p.ln();
    let lq = f64::ln_1p(-p);
    let mut total = 0.0f64;
    let kmax = n.min(t + 1 + 2000);
    for k in t + 1..=kmax {
        total += (ln_choose(n, k) + k as f64 * lp + (n - k) as f64 * lq).exp();
    }
    total.min(1.0)
}

/// Probability that one BCH-protected block is uncorrectable at raw bit
/// error rate `raw_ber` — the paper's "resulting error rate" for each
/// code (Fig. 8).
pub fn block_failure_rate(code: &Bch, raw_ber: f64) -> f64 {
    binomial_tail(code.codeword_bits() as u64, raw_ber, code.t() as u64)
}

/// Probability that one BCH-protected block sees at least one error but
/// stays correctable: `P(1 ≤ Bin(n, p) ≤ t)`. This is the analytic twin of
/// the exact simulator's `DecodeOutcome::Corrected` tally — the analytic
/// pipeline mode uses it to report expected corrected-block counts without
/// consuming any extra RNG draws.
pub fn block_correction_rate(code: &Bch, raw_ber: f64) -> f64 {
    let n = code.codeword_bits() as u64;
    (binomial_tail(n, raw_ber, 0) - binomial_tail(n, raw_ber, code.t() as u64)).max(0.0)
}

/// Memoized `(block_failure_rate, block_correction_rate)` pair for a
/// `(code strength, raw_ber)` key. The binomial tails cost thousands of
/// `ln_gamma` evaluations; the analytic pipeline mode asks for the same
/// pair on every `store_load` call, so a process-wide cache turns that
/// into a hash lookup after the first computation.
pub fn cached_block_rates(code: &Bch, raw_ber: f64) -> (f64, f64) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type RateCache = Mutex<HashMap<(usize, u64), (f64, f64)>>;
    static CACHE: OnceLock<RateCache> = OnceLock::new();
    let key = (code.t(), raw_ber.to_bits());
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("block-rate cache poisoned");
    *map.entry(key).or_insert_with(|| {
        (
            block_failure_rate(code, raw_ber),
            block_correction_rate(code, raw_ber),
        )
    })
}

/// Expected fraction of *data* bits left in error after decoding: failed
/// blocks keep (approximately) their raw errors, corrected blocks none.
pub fn residual_ber(code: &Bch, raw_ber: f64) -> f64 {
    // Conditional expected error count given failure is ≈ t+1 (the tail is
    // dominated by its first term at the rates of interest).
    let q = block_failure_rate(code, raw_ber);
    q * (code.t() as f64 + 1.0) / code.codeword_bits() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u64, 1f64), (2, 1.0), (5, 24.0), (10, 362880.0)] {
            assert!(
                (ln_gamma(n as f64) - f.ln()).abs() < 1e-9,
                "Γ({n}) mismatch"
            );
        }
    }

    #[test]
    fn binomial_tail_simple_cases() {
        // n=2, p=0.5, t=0: P(X>0) = 3/4.
        assert!((binomial_tail(2, 0.5, 0) - 0.75).abs() < 1e-12);
        // n=3, p=0.5, t=2: P(X>2) = 1/8.
        assert!((binomial_tail(3, 0.5, 2) - 0.125).abs() < 1e-12);
        assert_eq!(binomial_tail(10, 0.0, 0), 0.0);
        assert_eq!(binomial_tail(10, 1.0, 5), 1.0);
        assert_eq!(binomial_tail(10, 0.3, 10), 0.0);
    }

    #[test]
    fn paper_figure8_orders_of_magnitude() {
        // Fig. 8: at raw BER 1e-3 on 512-bit blocks, BCH-6 yields ~1e-6,
        // BCH-10 ~1e-10 and BCH-16 ~1e-16 uncorrectable rates (order of
        // magnitude). Check we land within ±2 decades of the paper's
        // rounded values (the paper's 10^-X figures are heuristic
        // roundings; the exact binomial tail for BCH-16 is ~1e-17.8).
        for (t, expect_log10) in [
            (6usize, -6.0f64),
            (7, -7.0),
            (8, -8.0),
            (9, -9.0),
            (10, -10.0),
            (11, -11.0),
            (16, -16.0),
        ] {
            let code = Bch::new(t);
            let q = block_failure_rate(&code, 1e-3);
            let l = q.log10();
            assert!(
                (l - expect_log10).abs() < 2.0,
                "BCH-{t}: got 1e{l:.1}, paper ~1e{expect_log10}"
            );
        }
    }

    #[test]
    fn stronger_codes_fail_less() {
        let mut last = 1.0;
        for t in [6usize, 7, 8, 9, 10, 11, 16] {
            let q = block_failure_rate(&Bch::new(t), 1e-3);
            assert!(q < last, "BCH-{t} not monotone");
            last = q;
        }
    }

    #[test]
    fn correction_rate_partitions_the_error_space() {
        // P(clean) + P(corrected) + P(uncorrectable) must equal 1.
        let code = Bch::new(6);
        let p = 1e-3;
        let n = code.codeword_bits() as u64;
        let p_any = binomial_tail(n, p, 0);
        let p_clean = 1.0 - p_any;
        let p_corr = block_correction_rate(&code, p);
        let p_fail = block_failure_rate(&code, p);
        assert!((p_clean + p_corr + p_fail - 1.0).abs() < 1e-12);
        // At these rates nearly every errored block is correctable.
        assert!(p_corr > p_fail * 100.0);
        assert_eq!(block_correction_rate(&code, 0.0), 0.0);
    }

    #[test]
    fn cached_rates_match_direct_computation() {
        let code = Bch::new(6);
        for p in [1e-4, 1e-3, 2e-2] {
            let (q, c) = cached_block_rates(&code, p);
            assert_eq!(q, block_failure_rate(&code, p));
            assert_eq!(c, block_correction_rate(&code, p));
            // Second lookup serves from cache, same values.
            assert_eq!(cached_block_rates(&code, p), (q, c));
        }
    }

    #[test]
    fn residual_ber_below_block_rate() {
        let code = Bch::new(6);
        let q = block_failure_rate(&code, 1e-3);
        let r = residual_ber(&code, 1e-3);
        assert!(r < q);
        assert!(r > 0.0);
    }
}
