//! Arithmetic in GF(2^10) — the field behind the BCH codes.
//!
//! The paper's substrate protects 512-bit blocks with BCH-X codes whose
//! parity is 10 bits per corrected error; that "10" is exactly the degree
//! of this field over GF(2) (codeword length n = 2^10 − 1 = 1023, shortened
//! to 512 + 10X).

/// Field order minus one (number of nonzero elements).
pub const GF_ORDER: usize = 1023;

/// Primitive polynomial x^10 + x^3 + 1.
const PRIM_POLY: u32 = 0x409;

/// Precomputed exponential/logarithm tables for GF(2^10).
#[derive(Debug)]
pub struct Gf1024 {
    exp: [u16; 2 * GF_ORDER],
    log: [u16; GF_ORDER + 1],
}

impl Gf1024 {
    fn build() -> Box<Gf1024> {
        let mut exp = [0u16; 2 * GF_ORDER];
        let mut log = [0u16; GF_ORDER + 1];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().take(GF_ORDER).enumerate() {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x400 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in GF_ORDER..2 * GF_ORDER {
            exp[i] = exp[i - GF_ORDER];
        }
        Box::new(Gf1024 { exp, log })
    }

    /// The shared table instance.
    pub fn get() -> &'static Gf1024 {
        use std::sync::OnceLock;
        static INSTANCE: OnceLock<Box<Gf1024>> = OnceLock::new();
        INSTANCE.get_or_init(Gf1024::build)
    }

    /// α^i (any non-negative exponent).
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % GF_ORDER]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, a: u16) -> u16 {
        assert!(a != 0, "log of zero");
        self.log[a as usize]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        self.exp[GF_ORDER - self.log[a as usize] as usize]
    }

    /// a^k for field element a.
    pub fn pow(&self, a: u16, k: usize) -> u16 {
        if a == 0 {
            return if k == 0 { 1 } else { 0 };
        }
        self.exp[(self.log[a as usize] as usize * k) % GF_ORDER]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let gf = Gf1024::get();
        let mut seen = vec![false; GF_ORDER + 1];
        for i in 0..GF_ORDER {
            let v = gf.alpha_pow(i) as usize;
            assert!(v != 0 && v <= GF_ORDER);
            assert!(!seen[v], "alpha^{i} repeats");
            seen[v] = true;
        }
        assert_eq!(gf.alpha_pow(GF_ORDER), 1); // α^1023 = 1
    }

    #[test]
    fn mul_matches_log_sum() {
        let gf = Gf1024::get();
        for (a, b) in [(3u16, 7u16), (100, 900), (1023, 1), (512, 2)] {
            let p = gf.mul(a, b);
            assert_ne!(p, 0);
            assert_eq!(
                (gf.log(a) as usize + gf.log(b) as usize) % GF_ORDER,
                gf.log(p) as usize
            );
        }
        assert_eq!(gf.mul(0, 5), 0);
        assert_eq!(gf.mul(5, 0), 0);
    }

    #[test]
    fn inverse_really_inverts() {
        let gf = Gf1024::get();
        for a in 1..=GF_ORDER as u16 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_basics() {
        let gf = Gf1024::get();
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
        let a = gf.alpha_pow(1);
        assert_eq!(gf.pow(a, GF_ORDER), 1);
        assert_eq!(gf.pow(a, 3), gf.alpha_pow(3));
    }

    #[test]
    fn primitive_polynomial_is_satisfied() {
        // α^10 = α^3 + 1 under x^10 + x^3 + 1.
        let gf = Gf1024::get();
        assert_eq!(gf.alpha_pow(10), gf.alpha_pow(3) ^ 1);
    }
}
