//! Arithmetic in GF(2^10) — the field behind the BCH codes.
//!
//! The paper's substrate protects 512-bit blocks with BCH-X codes whose
//! parity is 10 bits per corrected error; that "10" is exactly the degree
//! of this field over GF(2) (codeword length n = 2^10 − 1 = 1023, shortened
//! to 512 + 10X).

/// Field order minus one (number of nonzero elements).
pub const GF_ORDER: usize = 1023;

/// Primitive polynomial x^10 + x^3 + 1.
const PRIM_POLY: u32 = 0x409;

/// Sentinel in the quadratic-solver table: `y² + y = c` has no solution.
const NO_ROOT: u16 = u16::MAX;

/// Precomputed exponential/logarithm tables for GF(2^10).
#[derive(Debug)]
pub struct Gf1024 {
    exp: [u16; 2 * GF_ORDER],
    log: [u16; GF_ORDER + 1],
    /// `qsolve[c]` is a root `y` of `y² + y = c` (the other root is
    /// `y ^ 1`), or [`NO_ROOT`] when the trace of `c` is nonzero. The map
    /// `y ↦ y² + y` is 2-to-1 onto exactly half the field, so the table
    /// answers degree-2 error location in O(1) instead of a Chien sweep.
    qsolve: [u16; GF_ORDER + 1],
}

impl Gf1024 {
    fn build() -> Box<Gf1024> {
        let mut exp = [0u16; 2 * GF_ORDER];
        let mut log = [0u16; GF_ORDER + 1];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().take(GF_ORDER).enumerate() {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x400 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in GF_ORDER..2 * GF_ORDER {
            exp[i] = exp[i - GF_ORDER];
        }
        let mut qsolve = [NO_ROOT; GF_ORDER + 1];
        for y in 0..=GF_ORDER as u16 {
            // y² in GF(2^10): square via log doubling (0² = 0).
            let y2 = if y == 0 {
                0
            } else {
                exp[(2 * log[y as usize] as usize) % GF_ORDER]
            };
            let c = (y2 ^ y) as usize;
            if qsolve[c] == NO_ROOT {
                qsolve[c] = y;
            }
        }
        Box::new(Gf1024 { exp, log, qsolve })
    }

    /// The shared table instance.
    pub fn get() -> &'static Gf1024 {
        use std::sync::OnceLock;
        static INSTANCE: OnceLock<Box<Gf1024>> = OnceLock::new();
        INSTANCE.get_or_init(Gf1024::build)
    }

    /// α^i (any non-negative exponent).
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % GF_ORDER]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, a: u16) -> u16 {
        assert!(a != 0, "log of zero");
        self.log[a as usize]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        self.exp[GF_ORDER - self.log[a as usize] as usize]
    }

    /// a^k for field element a.
    pub fn pow(&self, a: u16, k: usize) -> u16 {
        if a == 0 {
            return if k == 0 { 1 } else { 0 };
        }
        self.exp[(self.log[a as usize] as usize * k) % GF_ORDER]
    }

    /// `a · α^log_b` with the multiplier already in log form
    /// (`log_b < GF_ORDER`). The workhorse of the table-driven decoder:
    /// fixed-multiplier chains (Horner steps, Chien updates) skip one log
    /// lookup per product.
    #[inline]
    pub fn mul_alpha_log(&self, a: u16, log_b: usize) -> u16 {
        debug_assert!(log_b < GF_ORDER);
        if a == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + log_b]
    }

    /// Field squaring. Squaring is GF(2)-linear over the polynomial
    /// basis (cross terms carry factor 2 = 0), which is what lets the
    /// batch decoder derive even syndromes from odd ones with a fixed
    /// 10×10 bit matrix instead of per-element multiplies.
    #[inline]
    pub fn square(&self, a: u16) -> u16 {
        if a == 0 {
            return 0;
        }
        self.exp[(2 * self.log[a as usize] as usize) % GF_ORDER]
    }

    /// A root `y` of `y² + y = c`, if one exists; the other root is
    /// `y ^ 1`. Exactly half of the field's elements have solutions
    /// (those with zero trace).
    #[inline]
    pub fn solve_quadratic(&self, c: u16) -> Option<u16> {
        match self.qsolve[c as usize] {
            NO_ROOT => None,
            y => Some(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let gf = Gf1024::get();
        let mut seen = vec![false; GF_ORDER + 1];
        for i in 0..GF_ORDER {
            let v = gf.alpha_pow(i) as usize;
            assert!(v != 0 && v <= GF_ORDER);
            assert!(!seen[v], "alpha^{i} repeats");
            seen[v] = true;
        }
        assert_eq!(gf.alpha_pow(GF_ORDER), 1); // α^1023 = 1
    }

    #[test]
    fn mul_matches_log_sum() {
        let gf = Gf1024::get();
        for (a, b) in [(3u16, 7u16), (100, 900), (1023, 1), (512, 2)] {
            let p = gf.mul(a, b);
            assert_ne!(p, 0);
            assert_eq!(
                (gf.log(a) as usize + gf.log(b) as usize) % GF_ORDER,
                gf.log(p) as usize
            );
        }
        assert_eq!(gf.mul(0, 5), 0);
        assert_eq!(gf.mul(5, 0), 0);
    }

    #[test]
    fn inverse_really_inverts() {
        let gf = Gf1024::get();
        for a in 1..=GF_ORDER as u16 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_basics() {
        let gf = Gf1024::get();
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
        let a = gf.alpha_pow(1);
        assert_eq!(gf.pow(a, GF_ORDER), 1);
        assert_eq!(gf.pow(a, 3), gf.alpha_pow(3));
    }

    #[test]
    fn mul_alpha_log_matches_mul() {
        let gf = Gf1024::get();
        for a in [0u16, 1, 5, 511, 1023] {
            for log_b in [0usize, 1, 8, 500, 1022] {
                assert_eq!(
                    gf.mul_alpha_log(a, log_b),
                    gf.mul(a, gf.alpha_pow(log_b)),
                    "a={a} log_b={log_b}"
                );
            }
        }
    }

    #[test]
    fn solve_quadratic_roots_check_out() {
        let gf = Gf1024::get();
        let mut solvable = 0usize;
        for c in 0..=GF_ORDER as u16 {
            if let Some(y) = gf.solve_quadratic(c) {
                solvable += 1;
                for root in [y, y ^ 1] {
                    assert_eq!(gf.mul(root, root) ^ root, c, "c={c} root={root}");
                }
            }
        }
        // The trace splits the field in half: 512 of 1024 values solvable.
        assert_eq!(solvable, 512);
    }

    #[test]
    fn square_matches_mul_and_is_linear() {
        let gf = Gf1024::get();
        for a in 0..=GF_ORDER as u16 {
            assert_eq!(gf.square(a), gf.mul(a, a), "a = {a}");
        }
        // GF(2)-linearity: (a + b)² = a² + b² — the Frobenius property
        // the batch decoder's even-syndrome matrix relies on.
        for (a, b) in [(3u16, 7u16), (100, 900), (512, 2), (1023, 511)] {
            assert_eq!(gf.square(a ^ b), gf.square(a) ^ gf.square(b));
        }
    }

    #[test]
    fn primitive_polynomial_is_satisfied() {
        // α^10 = α^3 + 1 under x^10 + x^3 + 1.
        let gf = Gf1024::get();
        assert_eq!(gf.alpha_pow(10), gf.alpha_pow(3) ^ 1);
    }
}
