//! BCH error-correcting codes over GF(2^10).
//!
//! The paper's variable error correction (Fig. 8, Table 1) uses BCH-X
//! codes protecting 512-bit blocks: X correctable errors cost exactly
//! 10·X parity bits (11.7% overhead for BCH-6 up to 31.3% for BCH-16).
//! This module implements the real thing: generator synthesis from
//! cyclotomic cosets, systematic LFSR encoding, and syndrome /
//! Berlekamp–Massey / Chien-search decoding. The codes are
//! *self-correcting* — parity bits are part of the protected codeword.

use crate::bits::BitBuf;
use crate::gf::{Gf1024, GF_ORDER};

/// Data bits per protected block (the paper's 512-bit PCM block).
pub const DATA_BITS: usize = 512;

/// Outcome of decoding one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No errors detected.
    Clean,
    /// Errors were found and corrected (count given).
    Corrected(usize),
    /// More errors than the code can correct; data left as-is.
    Uncorrectable,
}

/// A BCH-X code over a 512-bit data block.
///
/// # Example
///
/// ```
/// use vapp_storage::bch::{Bch, DATA_BITS};
/// use vapp_storage::bits::BitBuf;
///
/// let code = Bch::new(6);
/// let mut data = BitBuf::zeroed(DATA_BITS);
/// data.set(3, true);
/// let mut cw = code.encode(&data);
/// cw.flip(100);
/// cw.flip(400);
/// let out = code.decode(&mut cw);
/// assert_eq!(out, vapp_storage::bch::DecodeOutcome::Corrected(2));
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Clone, Debug)]
pub struct Bch {
    t: usize,
    generator: Vec<bool>, // g(x), generator[i] = coefficient of x^i
}

impl Bch {
    /// Builds the BCH code correcting `t` errors.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0 or so large the shortened code cannot hold 512
    /// data bits.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1, "t must be at least 1");
        let generator = generator_poly(t);
        let parity = generator.len() - 1;
        assert!(
            DATA_BITS + parity <= GF_ORDER,
            "code too strong for 512-bit blocks"
        );
        Bch { t, generator }
    }

    /// Number of correctable errors.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Parity bits per block (degree of the generator; 10·t for our range).
    pub fn parity_bits(&self) -> usize {
        self.generator.len() - 1
    }

    /// Codeword length in bits (512 data + parity).
    pub fn codeword_bits(&self) -> usize {
        DATA_BITS + self.parity_bits()
    }

    /// Storage overhead relative to the data (paper Fig. 8 x-axis).
    pub fn overhead(&self) -> f64 {
        self.parity_bits() as f64 / DATA_BITS as f64
    }

    /// Systematically encodes a 512-bit block into a codeword.
    ///
    /// Codeword layout: bits `0..512` data (bit i = coefficient of
    /// x^(parity + i)), bits `512..` parity (bit j = coefficient of x^j).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly 512 bits.
    pub fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), DATA_BITS, "data must be 512 bits");
        let p = self.parity_bits();
        // LFSR division of m(x)·x^p by g(x): feed message high-order first.
        let mut reg = vec![false; p];
        for i in (0..DATA_BITS).rev() {
            let feedback = data.get(i) ^ reg[p - 1];
            for j in (1..p).rev() {
                reg[j] = reg[j - 1] ^ (feedback && self.generator[j]);
            }
            reg[0] = feedback && self.generator[0];
        }
        let mut cw = BitBuf::zeroed(self.codeword_bits());
        for i in 0..DATA_BITS {
            cw.set(i, data.get(i));
        }
        for (j, &r) in reg.iter().enumerate() {
            cw.set(DATA_BITS + j, r);
        }
        cw
    }

    /// Coefficient of x^k in the codeword polynomial.
    #[inline]
    fn coeff(&self, cw: &BitBuf, k: usize) -> bool {
        let p = self.parity_bits();
        if k < p {
            cw.get(DATA_BITS + k)
        } else {
            cw.get(k - p)
        }
    }

    fn set_coeff(&self, cw: &mut BitBuf, k: usize, v: bool) {
        let p = self.parity_bits();
        if k < p {
            cw.set(DATA_BITS + k, v);
        } else {
            cw.set(k - p, v);
        }
    }

    /// Decodes in place, correcting up to `t` errors anywhere in the
    /// codeword (data or parity).
    pub fn decode(&self, cw: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(cw.len(), self.codeword_bits(), "codeword length mismatch");
        let gf = Gf1024::get();
        let n = self.codeword_bits();

        // Syndromes S_j = c(α^j), j = 1..2t, via Horner on the polynomial.
        let mut syndromes = vec![0u16; 2 * self.t];
        for (ji, s) in syndromes.iter_mut().enumerate() {
            let j = ji + 1;
            let aj = gf.alpha_pow(j);
            let mut acc = 0u16;
            for k in (0..n).rev() {
                acc = gf.mul(acc, aj);
                if self.coeff(cw, k) {
                    acc ^= 1;
                }
            }
            *s = acc;
        }
        if syndromes.iter().all(|&s| s == 0) {
            return self.tally(DecodeOutcome::Clean);
        }

        // Berlekamp–Massey: find the error locator σ(x).
        let sigma = berlekamp_massey(&syndromes, gf);
        let deg = sigma.len() - 1;
        if deg == 0 || deg > self.t {
            return self.tally(DecodeOutcome::Uncorrectable);
        }

        // Chien search over positions 0..n: position k errs iff
        // σ(α^(−k)) = 0.
        let mut positions = Vec::new();
        for k in 0..n {
            let x = gf.alpha_pow((GF_ORDER - k % GF_ORDER) % GF_ORDER); // α^{-k}
            let mut acc = 0u16;
            for (d, &c) in sigma.iter().enumerate() {
                acc ^= gf.mul(c, gf.pow(x, d));
            }
            if acc == 0 {
                positions.push(k);
                if positions.len() > deg {
                    break;
                }
            }
        }
        if positions.len() != deg {
            return self.tally(DecodeOutcome::Uncorrectable);
        }
        for &k in &positions {
            let v = self.coeff(cw, k);
            self.set_coeff(cw, k, !v);
        }
        self.tally(DecodeOutcome::Corrected(positions.len()))
    }

    /// Records one decode outcome in the observability registry
    /// (`storage.bch.clean` / `.corrected` / `.uncorrectable`, plus the
    /// individual `storage.bch.bits_corrected` total) and passes it through.
    fn tally(&self, out: DecodeOutcome) -> DecodeOutcome {
        match out {
            DecodeOutcome::Clean => vapp_obs::counter!("storage.bch.clean"),
            DecodeOutcome::Corrected(n) => {
                vapp_obs::counter!("storage.bch.corrected");
                vapp_obs::counter!("storage.bch.bits_corrected", n as u64);
            }
            DecodeOutcome::Uncorrectable => vapp_obs::counter!("storage.bch.uncorrectable"),
        }
        out
    }

    /// Extracts the 512 data bits from a codeword.
    pub fn extract_data(&self, cw: &BitBuf) -> BitBuf {
        let mut out = BitBuf::zeroed(DATA_BITS);
        for i in 0..DATA_BITS {
            out.set(i, cw.get(i));
        }
        out
    }
}

/// Berlekamp–Massey over GF(2^10): returns σ(x) coefficients, σ[0] = 1.
fn berlekamp_massey(syndromes: &[u16], gf: &Gf1024) -> Vec<u16> {
    let mut sigma = vec![1u16];
    let mut b = vec![1u16];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb = 1u16;
    for n in 0..syndromes.len() {
        // Discrepancy.
        let mut d = syndromes[n];
        for i in 1..=l.min(sigma.len() - 1) {
            d ^= gf.mul(sigma[i], syndromes[n - i]);
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t_poly = sigma.clone();
            let coef = gf.mul(d, gf.inv(bb));
            grow_xor(&mut sigma, &b, coef, m, gf);
            l = n + 1 - l;
            b = t_poly;
            bb = d;
            m = 1;
        } else {
            let coef = gf.mul(d, gf.inv(bb));
            grow_xor(&mut sigma, &b, coef, m, gf);
            m += 1;
        }
    }
    sigma.truncate(l + 1);
    sigma
}

/// sigma ^= coef · b(x) · x^shift, growing sigma as needed.
fn grow_xor(sigma: &mut Vec<u16>, b: &[u16], coef: u16, shift: usize, gf: &Gf1024) {
    let need = b.len() + shift;
    if sigma.len() < need {
        sigma.resize(need, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        sigma[i + shift] ^= gf.mul(coef, bi);
    }
}

/// Generator polynomial of the t-error-correcting BCH code over GF(2^10):
/// lcm of the minimal polynomials of α^1 … α^{2t}. Coefficients in GF(2).
fn generator_poly(t: usize) -> Vec<bool> {
    let gf = Gf1024::get();
    let mut seen = vec![false; GF_ORDER];
    // g as a GF(2) polynomial, bool per coefficient.
    let mut g = vec![true]; // constant 1
    for i in 1..=2 * t {
        if seen[i % GF_ORDER] {
            continue;
        }
        // Cyclotomic coset of i.
        let mut coset = Vec::new();
        let mut j = i % GF_ORDER;
        loop {
            if seen[j] {
                break;
            }
            seen[j] = true;
            coset.push(j);
            j = (j * 2) % GF_ORDER;
            if j == i % GF_ORDER {
                break;
            }
        }
        // Minimal polynomial: Π (x − α^j) over the coset, in GF(2^10).
        let mut min_poly: Vec<u16> = vec![1];
        for &e in &coset {
            let root = gf.alpha_pow(e);
            let mut next = vec![0u16; min_poly.len() + 1];
            for (d, &c) in min_poly.iter().enumerate() {
                next[d + 1] ^= c; // · x
                next[d] ^= gf.mul(c, root); // · root (− = + in GF(2^m))
            }
            min_poly = next;
        }
        // The product has binary coefficients by construction.
        let min_bits: Vec<bool> = min_poly
            .iter()
            .map(|&c| {
                debug_assert!(c <= 1, "minimal polynomial not binary");
                c == 1
            })
            .collect();
        // g *= min_poly over GF(2).
        let mut product = vec![false; g.len() + min_bits.len() - 1];
        for (a, &ga) in g.iter().enumerate() {
            if !ga {
                continue;
            }
            for (b, &mb) in min_bits.iter().enumerate() {
                if mb {
                    product[a + b] ^= true;
                }
            }
        }
        g = product;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_data(seed: u64) -> BitBuf {
        let mut d = BitBuf::zeroed(DATA_BITS);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in 0..DATA_BITS {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            d.set(i, (s >> 60) & 1 == 1);
        }
        d
    }

    #[test]
    fn parity_is_ten_bits_per_corrected_error() {
        // The paper's Fig. 8 overhead column depends on this exactly.
        for t in [6usize, 7, 8, 9, 10, 11, 16] {
            let code = Bch::new(t);
            assert_eq!(code.parity_bits(), 10 * t, "t = {t}");
        }
        let b6 = Bch::new(6);
        assert!((b6.overhead() - 0.1171875).abs() < 1e-9); // 11.7%
        let b16 = Bch::new(16);
        assert!((b16.overhead() - 0.3125).abs() < 1e-9); // 31.3%
    }

    #[test]
    fn clean_codeword_decodes_clean() {
        let code = Bch::new(6);
        let data = pattern_data(1);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn corrects_up_to_t_errors_anywhere() {
        for t in [6usize, 10, 16] {
            let code = Bch::new(t);
            let data = pattern_data(t as u64);
            let clean = code.encode(&data);
            // Spread errors over data and parity regions.
            let n = code.codeword_bits();
            let mut cw = clean.clone();
            let mut flipped = Vec::new();
            for e in 0..t {
                let pos = (e * 97 + 13) % n;
                if !flipped.contains(&pos) {
                    cw.flip(pos);
                    flipped.push(pos);
                }
            }
            let out = code.decode(&mut cw);
            assert_eq!(out, DecodeOutcome::Corrected(flipped.len()), "t = {t}");
            assert_eq!(cw, clean, "t = {t}: codeword not restored");
        }
    }

    #[test]
    fn single_error_in_parity_corrected() {
        let code = Bch::new(6);
        let data = pattern_data(9);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        cw.flip(DATA_BITS + 5);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected(1));
        assert_eq!(cw, clean);
    }

    #[test]
    fn more_than_t_errors_detected_as_uncorrectable_or_miscorrected() {
        // With t+1 ... 2t errors, BCH must not silently "correct" back to
        // the original; it either flags uncorrectable or lands on a
        // different codeword. We check it never restores the clean data.
        let code = Bch::new(6);
        let data = pattern_data(3);
        let clean = code.encode(&data);
        let mut wrong_restores = 0;
        for trial in 0..10u64 {
            let mut cw = clean.clone();
            let mut s = trial.wrapping_mul(0x12345) | 1;
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < 7 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                flipped.insert((s >> 33) as usize % code.codeword_bits());
            }
            for &p in &flipped {
                cw.flip(p);
            }
            match code.decode(&mut cw) {
                DecodeOutcome::Uncorrectable => {}
                _ => {
                    if code.extract_data(&cw) == data && cw == clean {
                        wrong_restores += 1;
                    }
                }
            }
        }
        assert_eq!(wrong_restores, 0, "7 errors must never restore silently");
    }

    #[test]
    fn all_zero_data_roundtrip() {
        let code = Bch::new(8);
        let data = BitBuf::zeroed(DATA_BITS);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        cw.flip(0);
        cw.flip(550);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected(2));
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    #[should_panic(expected = "512 bits")]
    fn wrong_data_length_rejected() {
        Bch::new(6).encode(&BitBuf::zeroed(100));
    }
}
