//! BCH error-correcting codes over GF(2^10).
//!
//! The paper's variable error correction (Fig. 8, Table 1) uses BCH-X
//! codes protecting 512-bit blocks: X correctable errors cost exactly
//! 10·X parity bits (11.7% overhead for BCH-6 up to 31.3% for BCH-16).
//! This module implements the real thing: generator synthesis from
//! cyclotomic cosets, systematic LFSR encoding, and syndrome /
//! Berlekamp–Massey / Chien-search decoding. The codes are
//! *self-correcting* — parity bits are part of the protected codeword.
//!
//! The hot paths are table-driven and word-parallel (see DESIGN.md,
//! "Storage kernels"):
//!
//! * **Encode** steps the LFSR one *byte* at a time, CRC-style: a
//!   256-entry table maps `(top byte of remainder) ^ (data byte)` to the
//!   remainder update, so a 512-bit block costs 64 table steps instead of
//!   512 bit shifts.
//! * **Decode** first re-derives the parity from the data bytes and
//!   compares words against the stored parity — equal iff all 2t
//!   syndromes are zero, so clean blocks (the common case at realistic
//!   BERs) never compute a syndrome. Corrupted blocks compute syndromes
//!   byte-wise (Horner over bytes with per-syndrome 256-entry
//!   contribution tables), locate degree-1/2 errors in closed form, and
//!   fall back to an incremental Chien search (one multiply per step per
//!   σ-coefficient, early exit once all roots are found).
//!
//! The scalar bit-at-a-time implementation survives as
//! `reference::ScalarBch` (test-only); property tests pin the two to
//! byte-identical behavior.

use crate::bits::BitBuf;
use crate::gf::{Gf1024, GF_ORDER};

/// Data bits per protected block (the paper's 512-bit PCM block).
pub const DATA_BITS: usize = 512;

/// Data words per block.
const DATA_WORDS: usize = DATA_BITS / 64;

/// Max parity words: `DATA_BITS + parity <= GF_ORDER` caps parity at 511
/// bits.
const MAX_PW: usize = 8;

/// Outcome of decoding one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No errors detected.
    Clean,
    /// Errors were found and corrected (count given).
    Corrected(usize),
    /// More errors than the code can correct; data left as-is.
    Uncorrectable,
}

/// A BCH-X code over a 512-bit data block.
///
/// # Example
///
/// ```
/// use vapp_storage::bch::{Bch, DATA_BITS};
/// use vapp_storage::bits::BitBuf;
///
/// let code = Bch::new(6);
/// let mut data = BitBuf::zeroed(DATA_BITS);
/// data.set(3, true);
/// let mut cw = code.encode(&data);
/// cw.flip(100);
/// cw.flip(400);
/// let out = code.decode(&mut cw);
/// assert_eq!(out, vapp_storage::bch::DecodeOutcome::Corrected(2));
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Clone, Debug)]
pub struct Bch {
    t: usize,
    parity: usize,
    /// Words per parity register (`parity.div_ceil(64)`).
    pw: usize,
    /// Valid-bit mask for the top parity word.
    top_mask: u64,
    /// Byte-stepped LFSR update table, 256 rows × `pw` words:
    /// `row[b] = (b(x) · x^parity) mod g(x)`.
    enc_table: Vec<u64>,
    /// Per-syndrome Horner step `log α^{8j}`, j = 1..2t.
    syn_step_log: Vec<usize>,
    /// Per-syndrome data-section shift `log α^{j·parity}`.
    syn_data_shift_log: Vec<usize>,
    /// Per-syndrome byte-contribution tables, 2t × 256:
    /// `tbl_j[b] = Σ_{k ∈ bits(b)} α^{jk}`.
    syn_table: Vec<u16>,
}

impl Bch {
    /// Builds the BCH code correcting `t` errors.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0 or so large the shortened code cannot hold 512
    /// data bits.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1, "t must be at least 1");
        let generator = generator_poly(t);
        let parity = generator.len() - 1;
        assert!(
            DATA_BITS + parity <= GF_ORDER,
            "code too strong for 512-bit blocks"
        );
        let pw = parity.div_ceil(64);
        let top_mask = if parity.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (parity % 64)) - 1
        };

        // g(x) minus its monic x^parity term, packed into words; since g
        // is monic, x^parity ≡ this value (mod g).
        let mut g_low = [0u64; MAX_PW];
        for (k, &c) in generator.iter().enumerate().take(parity) {
            if c {
                g_low[k / 64] |= 1u64 << (k % 64);
            }
        }

        // bit_rem[k] = x^{parity+k} mod g, k = 0..8, by repeated ·x.
        let mut bit_rem = [[0u64; MAX_PW]; 8];
        let mut cur = g_low;
        bit_rem[0] = cur;
        for rem in bit_rem.iter_mut().skip(1) {
            // cur ·= x (mod g): shift up one bit, reduce if x^parity appears.
            let carry = (cur[(parity - 1) / 64] >> ((parity - 1) % 64)) & 1 == 1;
            for w in (1..pw).rev() {
                cur[w] = (cur[w] << 1) | (cur[w - 1] >> 63);
            }
            cur[0] <<= 1;
            cur[pw - 1] &= top_mask;
            if carry {
                for w in 0..pw {
                    cur[w] ^= g_low[w];
                }
            }
            *rem = cur;
        }

        // Byte update table by linearity over the bits of the index.
        let mut enc_table = vec![0u64; 256 * pw];
        for b in 1usize..256 {
            let k = b.trailing_zeros() as usize;
            let prev = b & (b - 1);
            for w in 0..pw {
                enc_table[b * pw + w] = enc_table[prev * pw + w] ^ bit_rem[k][w];
            }
        }

        // Syndrome tables: per j, byte contributions and Horner steps.
        let gf = Gf1024::get();
        let mut syn_step_log = Vec::with_capacity(2 * t);
        let mut syn_data_shift_log = Vec::with_capacity(2 * t);
        let mut syn_table = vec![0u16; 2 * t * 256];
        for j in 1..=2 * t {
            syn_step_log.push((8 * j) % GF_ORDER);
            syn_data_shift_log.push((j * parity) % GF_ORDER);
            let tbl = &mut syn_table[(j - 1) * 256..j * 256];
            for b in 1usize..256 {
                let k = b.trailing_zeros() as usize;
                tbl[b] = tbl[b & (b - 1)] ^ gf.alpha_pow(j * k);
            }
        }

        Bch {
            t,
            parity,
            pw,
            top_mask,
            enc_table,
            syn_step_log,
            syn_data_shift_log,
            syn_table,
        }
    }

    /// The process-wide cached instance for `t`: generator synthesis and
    /// table construction happen once, callers share one `'static` code.
    pub fn cached(t: usize) -> &'static Bch {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static REGISTRY: OnceLock<Mutex<HashMap<usize, &'static Bch>>> = OnceLock::new();
        let mut map = REGISTRY
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("BCH registry poisoned");
        map.entry(t)
            .or_insert_with(|| Box::leak(Box::new(Bch::new(t))))
    }

    /// Number of correctable errors.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Parity bits per block (degree of the generator; 10·t for our range).
    pub fn parity_bits(&self) -> usize {
        self.parity
    }

    /// Codeword length in bits (512 data + parity).
    pub fn codeword_bits(&self) -> usize {
        DATA_BITS + self.parity
    }

    /// Storage overhead relative to the data (paper Fig. 8 x-axis).
    pub fn overhead(&self) -> f64 {
        self.parity_bits() as f64 / DATA_BITS as f64
    }

    /// Remainder of `m(x)·x^parity mod g(x)` for a 512-bit data block,
    /// stepping the LFSR a byte at a time: read the top remainder byte,
    /// shift by 8, xor the table row for `top ^ data_byte`. Data bytes
    /// feed highest polynomial degree (bit 511) first.
    fn data_parity(&self, dw: &[u64]) -> [u64; MAX_PW] {
        debug_assert_eq!(dw.len(), DATA_WORDS);
        let pw = self.pw;
        let top = self.parity - 8;
        let (tw, ts) = (top / 64, top % 64);
        let mut r = [0u64; MAX_PW];
        for m in (0..DATA_BITS / 8).rev() {
            let byte = (dw[m / 8] >> (8 * (m % 8))) as u8;
            let mut hi = r[tw] >> ts;
            if ts > 56 {
                hi |= r[tw + 1] << (64 - ts);
            }
            let idx = (hi as u8 ^ byte) as usize;
            for w in (1..pw).rev() {
                r[w] = (r[w] << 8) | (r[w - 1] >> 56);
            }
            r[0] <<= 8;
            r[pw - 1] &= self.top_mask;
            let row = &self.enc_table[idx * pw..(idx + 1) * pw];
            for w in 0..pw {
                r[w] ^= row[w];
            }
        }
        r
    }

    /// Systematically encodes a 512-bit block into a codeword.
    ///
    /// Codeword layout: bits `0..512` data (bit i = coefficient of
    /// x^(parity + i)), bits `512..` parity (bit j = coefficient of x^j).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly 512 bits.
    pub fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), DATA_BITS, "data must be 512 bits");
        let r = self.data_parity(data.words());
        let mut words = Vec::with_capacity(DATA_WORDS + self.pw);
        words.extend_from_slice(data.words());
        words.extend_from_slice(&r[..self.pw]);
        BitBuf::from_words(words, self.codeword_bits())
    }

    /// Syndromes S_j = c(α^j), j = 1..2t, via byte-wise Horner run
    /// separately over the data section (codeword bits 0..512, polynomial
    /// degrees parity..) and the parity section (degrees 0..parity), both
    /// of which are byte-aligned in the word backing.
    fn syndromes(&self, words: &[u64]) -> Vec<u16> {
        let gf = Gf1024::get();
        let parity_bytes = self.parity.div_ceil(8);
        let mut out = vec![0u16; 2 * self.t];
        for (ji, s) in out.iter_mut().enumerate() {
            let tbl = &self.syn_table[ji * 256..(ji + 1) * 256];
            let step = self.syn_step_log[ji];
            let mut d = 0u16;
            for m in (0..DATA_BITS / 8).rev() {
                let b = (words[m / 8] >> (8 * (m % 8))) as u8;
                d = gf.mul_alpha_log(d, step) ^ tbl[b as usize];
            }
            let mut r = 0u16;
            for m in (0..parity_bytes).rev() {
                let b = (words[DATA_WORDS + m / 8] >> (8 * (m % 8))) as u8;
                r = gf.mul_alpha_log(r, step) ^ tbl[b as usize];
            }
            *s = gf.mul_alpha_log(d, self.syn_data_shift_log[ji]) ^ r;
        }
        out
    }

    /// Decodes in place, correcting up to `t` errors anywhere in the
    /// codeword (data or parity).
    pub fn decode(&self, cw: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(cw.len(), self.codeword_bits(), "codeword length mismatch");
        let gf = Gf1024::get();
        let n = self.codeword_bits();

        // Fast clean check: recomputed parity matches stored parity iff
        // g(x) divides the codeword iff all 2t syndromes vanish (g is the
        // lcm of the minimal polynomials of α^1..α^2t). Parity words sit
        // word-aligned at words[8..] with a zeroed tail, mirroring the
        // masked LFSR register, so this is a pw-word compare.
        let r = self.data_parity(&cw.words()[..DATA_WORDS]);
        if r[..self.pw] == cw.words()[DATA_WORDS..] {
            return self.tally(DecodeOutcome::Clean);
        }

        let syndromes = self.syndromes(cw.words());
        if syndromes.iter().all(|&s| s == 0) {
            return self.tally(DecodeOutcome::Clean);
        }

        // Berlekamp–Massey: find the error locator σ(x).
        let sigma = berlekamp_massey(&syndromes, gf);
        let deg = sigma.len() - 1;
        if deg == 0 || deg > self.t {
            return self.tally(DecodeOutcome::Uncorrectable);
        }

        // Error positions k ∈ 0..n with σ(α^{-k}) = 0: closed forms for
        // one and two errors, incremental Chien search above that.
        let positions = match deg {
            1 => locate_deg1(&sigma, n, gf),
            2 => locate_deg2(&sigma, n, gf),
            _ => chien_search(&sigma, n, gf),
        };
        let Some(positions) = positions else {
            return self.tally(DecodeOutcome::Uncorrectable);
        };
        for &k in &positions {
            // Coefficient x^k: parity bit k below `parity`, else data bit.
            if k < self.parity {
                cw.flip(DATA_BITS + k);
            } else {
                cw.flip(k - self.parity);
            }
        }
        self.tally(DecodeOutcome::Corrected(positions.len()))
    }

    /// Records one decode outcome in the observability registry
    /// (`storage.bch.clean` / `.corrected` / `.uncorrectable`, plus the
    /// individual `storage.bch.bits_corrected` total) and passes it through.
    fn tally(&self, out: DecodeOutcome) -> DecodeOutcome {
        match out {
            DecodeOutcome::Clean => vapp_obs::counter!("storage.bch.clean"),
            DecodeOutcome::Corrected(n) => {
                vapp_obs::counter!("storage.bch.corrected");
                vapp_obs::counter!("storage.bch.bits_corrected", n as u64);
            }
            DecodeOutcome::Uncorrectable => vapp_obs::counter!("storage.bch.uncorrectable"),
        }
        out
    }

    /// Extracts the 512 data bits from a codeword.
    pub fn extract_data(&self, cw: &BitBuf) -> BitBuf {
        BitBuf::from_words(cw.words()[..DATA_WORDS].to_vec(), DATA_BITS)
    }
}

/// Single error: σ(x) = 1 + σ1·x has the root α^{-k} = 1/σ1, so
/// k = log σ1 directly.
pub(crate) fn locate_deg1(sigma: &[u16], n: usize, gf: &Gf1024) -> Option<Vec<usize>> {
    let s1 = sigma[1];
    if s1 == 0 {
        return None; // actual degree 0: no roots, count mismatch
    }
    let k = gf.log(s1) as usize;
    (k < n).then(|| vec![k])
}

/// Two errors: normalize σ2·x² + σ1·x + 1 via x = (σ1/σ2)·y into
/// y² + y = σ2/σ1² and solve with the precomputed quadratic table; the
/// two roots map back to the two error positions.
pub(crate) fn locate_deg2(sigma: &[u16], n: usize, gf: &Gf1024) -> Option<Vec<usize>> {
    let (s1, s2) = (sigma[1], sigma[2]);
    if s1 == 0 || s2 == 0 {
        // Degenerate locator (a repeated root, or actual degree < 2):
        // a Chien sweep cannot find two distinct roots either.
        return None;
    }
    let c = gf.mul(s2, gf.inv(gf.mul(s1, s1)));
    let y0 = gf.solve_quadratic(c)?;
    let scale = gf.mul(s1, gf.inv(s2));
    let mut positions = Vec::with_capacity(2);
    for y in [y0, y0 ^ 1] {
        let x = gf.mul(scale, y); // y ≠ 0 since c ≠ 0
        let k = (GF_ORDER - gf.log(x) as usize) % GF_ORDER;
        if k >= n {
            return None;
        }
        positions.push(k);
    }
    Some(positions)
}

/// Chien search over positions 0..n, incrementally: q_d holds
/// σ_d·α^{-kd}, updated with one fixed-multiplier product per
/// coefficient per step; σ(α^{-k}) is then just the xor of the q_d.
/// Early-exits once `deg` roots are found (a degree-`deg` polynomial
/// has no more).
pub(crate) fn chien_search(sigma: &[u16], n: usize, gf: &Gf1024) -> Option<Vec<usize>> {
    let deg = sigma.len() - 1;
    let mut q = sigma.to_vec();
    let mut positions = Vec::with_capacity(deg);
    for k in 0..n {
        let mut acc = 0u16;
        for &v in &q {
            acc ^= v;
        }
        if acc == 0 {
            positions.push(k);
            if positions.len() == deg {
                break;
            }
        }
        for (d, v) in q.iter_mut().enumerate().skip(1) {
            *v = gf.mul_alpha_log(*v, GF_ORDER - d);
        }
    }
    (positions.len() == deg).then_some(positions)
}

/// Berlekamp–Massey over GF(2^10): returns σ(x) coefficients, σ[0] = 1.
pub(crate) fn berlekamp_massey(syndromes: &[u16], gf: &Gf1024) -> Vec<u16> {
    let mut sigma = vec![1u16];
    let mut b = vec![1u16];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb = 1u16;
    for n in 0..syndromes.len() {
        // Discrepancy.
        let mut d = syndromes[n];
        for i in 1..=l.min(sigma.len() - 1) {
            d ^= gf.mul(sigma[i], syndromes[n - i]);
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t_poly = sigma.clone();
            let coef = gf.mul(d, gf.inv(bb));
            grow_xor(&mut sigma, &b, coef, m, gf);
            l = n + 1 - l;
            b = t_poly;
            bb = d;
            m = 1;
        } else {
            let coef = gf.mul(d, gf.inv(bb));
            grow_xor(&mut sigma, &b, coef, m, gf);
            m += 1;
        }
    }
    sigma.truncate(l + 1);
    sigma
}

/// sigma ^= coef · b(x) · x^shift, growing sigma as needed.
fn grow_xor(sigma: &mut Vec<u16>, b: &[u16], coef: u16, shift: usize, gf: &Gf1024) {
    let need = b.len() + shift;
    if sigma.len() < need {
        sigma.resize(need, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        sigma[i + shift] ^= gf.mul(coef, bi);
    }
}

/// Generator polynomial of the t-error-correcting BCH code over GF(2^10):
/// lcm of the minimal polynomials of α^1 … α^{2t}. Coefficients in GF(2).
pub(crate) fn generator_poly(t: usize) -> Vec<bool> {
    let gf = Gf1024::get();
    let mut seen = vec![false; GF_ORDER];
    // g as a GF(2) polynomial, bool per coefficient.
    let mut g = vec![true]; // constant 1
    for i in 1..=2 * t {
        if seen[i % GF_ORDER] {
            continue;
        }
        // Cyclotomic coset of i.
        let mut coset = Vec::new();
        let mut j = i % GF_ORDER;
        loop {
            if seen[j] {
                break;
            }
            seen[j] = true;
            coset.push(j);
            j = (j * 2) % GF_ORDER;
            if j == i % GF_ORDER {
                break;
            }
        }
        // Minimal polynomial: Π (x − α^j) over the coset, in GF(2^10).
        let mut min_poly: Vec<u16> = vec![1];
        for &e in &coset {
            let root = gf.alpha_pow(e);
            let mut next = vec![0u16; min_poly.len() + 1];
            for (d, &c) in min_poly.iter().enumerate() {
                next[d + 1] ^= c; // · x
                next[d] ^= gf.mul(c, root); // · root (− = + in GF(2^m))
            }
            min_poly = next;
        }
        // The product has binary coefficients by construction.
        let min_bits: Vec<bool> = min_poly
            .iter()
            .map(|&c| {
                debug_assert!(c <= 1, "minimal polynomial not binary");
                c == 1
            })
            .collect();
        // g *= min_poly over GF(2).
        let mut product = vec![false; g.len() + min_bits.len() - 1];
        for (a, &ga) in g.iter().enumerate() {
            if !ga {
                continue;
            }
            for (b, &mb) in min_bits.iter().enumerate() {
                if mb {
                    product[a + b] ^= true;
                }
            }
        }
        g = product;
    }
    g
}

/// The scalar bit-at-a-time implementation the table-driven kernels
/// replaced, kept as the oracle for the equivalence property tests.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    pub struct ScalarBch {
        t: usize,
        generator: Vec<bool>,
    }

    impl ScalarBch {
        pub fn new(t: usize) -> Self {
            ScalarBch {
                t,
                generator: generator_poly(t),
            }
        }

        fn parity_bits(&self) -> usize {
            self.generator.len() - 1
        }

        pub fn codeword_bits(&self) -> usize {
            DATA_BITS + self.parity_bits()
        }

        fn coeff(&self, cw: &BitBuf, k: usize) -> bool {
            let p = self.parity_bits();
            if k < p {
                cw.get(DATA_BITS + k)
            } else {
                cw.get(k - p)
            }
        }

        fn set_coeff(&self, cw: &mut BitBuf, k: usize, v: bool) {
            let p = self.parity_bits();
            if k < p {
                cw.set(DATA_BITS + k, v);
            } else {
                cw.set(k - p, v);
            }
        }

        pub fn encode(&self, data: &BitBuf) -> BitBuf {
            assert_eq!(data.len(), DATA_BITS, "data must be 512 bits");
            let p = self.parity_bits();
            // LFSR division of m(x)·x^p by g(x): message high-order first.
            let mut reg = vec![false; p];
            for i in (0..DATA_BITS).rev() {
                let feedback = data.get(i) ^ reg[p - 1];
                for j in (1..p).rev() {
                    reg[j] = reg[j - 1] ^ (feedback && self.generator[j]);
                }
                reg[0] = feedback && self.generator[0];
            }
            let mut cw = BitBuf::zeroed(self.codeword_bits());
            for i in 0..DATA_BITS {
                cw.set(i, data.get(i));
            }
            for (j, &r) in reg.iter().enumerate() {
                cw.set(DATA_BITS + j, r);
            }
            cw
        }

        pub fn decode(&self, cw: &mut BitBuf) -> DecodeOutcome {
            assert_eq!(cw.len(), self.codeword_bits(), "codeword length mismatch");
            let gf = Gf1024::get();
            let n = self.codeword_bits();

            // Syndromes S_j = c(α^j), j = 1..2t, via full-codeword Horner.
            let mut syndromes = vec![0u16; 2 * self.t];
            for (ji, s) in syndromes.iter_mut().enumerate() {
                let j = ji + 1;
                let aj = gf.alpha_pow(j);
                let mut acc = 0u16;
                for k in (0..n).rev() {
                    acc = gf.mul(acc, aj);
                    if self.coeff(cw, k) {
                        acc ^= 1;
                    }
                }
                *s = acc;
            }
            if syndromes.iter().all(|&s| s == 0) {
                return DecodeOutcome::Clean;
            }

            let sigma = berlekamp_massey(&syndromes, gf);
            let deg = sigma.len() - 1;
            if deg == 0 || deg > self.t {
                return DecodeOutcome::Uncorrectable;
            }

            // Chien search: position k errs iff σ(α^(−k)) = 0.
            let mut positions = Vec::new();
            for k in 0..n {
                let x = gf.alpha_pow((GF_ORDER - k % GF_ORDER) % GF_ORDER);
                let mut acc = 0u16;
                for (d, &c) in sigma.iter().enumerate() {
                    acc ^= gf.mul(c, gf.pow(x, d));
                }
                if acc == 0 {
                    positions.push(k);
                    if positions.len() > deg {
                        break;
                    }
                }
            }
            if positions.len() != deg {
                return DecodeOutcome::Uncorrectable;
            }
            for &k in &positions {
                let v = self.coeff(cw, k);
                self.set_coeff(cw, k, !v);
            }
            DecodeOutcome::Corrected(positions.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_data(seed: u64) -> BitBuf {
        let mut d = BitBuf::zeroed(DATA_BITS);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in 0..DATA_BITS {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            d.set(i, (s >> 60) & 1 == 1);
        }
        d
    }

    #[test]
    fn parity_is_ten_bits_per_corrected_error() {
        // The paper's Fig. 8 overhead column depends on this exactly.
        for t in [6usize, 7, 8, 9, 10, 11, 16] {
            let code = Bch::new(t);
            assert_eq!(code.parity_bits(), 10 * t, "t = {t}");
        }
        let b6 = Bch::new(6);
        assert!((b6.overhead() - 0.1171875).abs() < 1e-9); // 11.7%
        let b16 = Bch::new(16);
        assert!((b16.overhead() - 0.3125).abs() < 1e-9); // 31.3%
    }

    #[test]
    fn cached_returns_one_instance_per_t() {
        let a = Bch::cached(6) as *const Bch;
        let b = Bch::cached(6) as *const Bch;
        assert_eq!(a, b);
        assert_eq!(Bch::cached(10).t(), 10);
    }

    #[test]
    fn clean_codeword_decodes_clean() {
        let code = Bch::new(6);
        let data = pattern_data(1);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn corrects_up_to_t_errors_anywhere() {
        for t in [6usize, 10, 16] {
            let code = Bch::new(t);
            let data = pattern_data(t as u64);
            let clean = code.encode(&data);
            // Spread errors over data and parity regions.
            let n = code.codeword_bits();
            let mut cw = clean.clone();
            let mut flipped = Vec::new();
            for e in 0..t {
                let pos = (e * 97 + 13) % n;
                if !flipped.contains(&pos) {
                    cw.flip(pos);
                    flipped.push(pos);
                }
            }
            let out = code.decode(&mut cw);
            assert_eq!(out, DecodeOutcome::Corrected(flipped.len()), "t = {t}");
            assert_eq!(cw, clean, "t = {t}: codeword not restored");
        }
    }

    #[test]
    fn single_error_in_parity_corrected() {
        let code = Bch::new(6);
        let data = pattern_data(9);
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        cw.flip(DATA_BITS + 5);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected(1));
        assert_eq!(cw, clean);
    }

    #[test]
    fn more_than_t_errors_detected_as_uncorrectable_or_miscorrected() {
        // With t+1 ... 2t errors, BCH must not silently "correct" back to
        // the original; it either flags uncorrectable or lands on a
        // different codeword. We check it never restores the clean data.
        let code = Bch::new(6);
        let data = pattern_data(3);
        let clean = code.encode(&data);
        let mut wrong_restores = 0;
        for trial in 0..10u64 {
            let mut cw = clean.clone();
            let mut s = trial.wrapping_mul(0x12345) | 1;
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < 7 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                flipped.insert((s >> 33) as usize % code.codeword_bits());
            }
            for &p in &flipped {
                cw.flip(p);
            }
            match code.decode(&mut cw) {
                DecodeOutcome::Uncorrectable => {}
                _ => {
                    if code.extract_data(&cw) == data && cw == clean {
                        wrong_restores += 1;
                    }
                }
            }
        }
        assert_eq!(wrong_restores, 0, "7 errors must never restore silently");
    }

    #[test]
    fn all_zero_data_roundtrip() {
        let code = Bch::new(8);
        let data = BitBuf::zeroed(DATA_BITS);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        cw.flip(0);
        cw.flip(550);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected(2));
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    #[should_panic(expected = "512 bits")]
    fn wrong_data_length_rejected() {
        Bch::new(6).encode(&BitBuf::zeroed(100));
    }

    #[test]
    fn fast_kernels_match_scalar_reference() {
        // The table-driven encode/decode against the retired scalar
        // implementation: random data, 0..=t+2 random error positions
        // (inside and beyond the correction radius), for the three code
        // strengths the figures use. Outcomes and the resulting codeword
        // bytes must agree exactly.
        for t in [6usize, 10, 16] {
            let fast = Bch::new(t);
            let slow = reference::ScalarBch::new(t);
            vapp_check::check(&format!("bch_fast_matches_scalar_t{t}"), 12, |rng| {
                use vapp_check::RngExt;
                let mut data = BitBuf::zeroed(DATA_BITS);
                for w in 0..DATA_BITS / 64 {
                    data.set_bits(w * 64, 64, rng.random::<u64>());
                }
                let cw_fast = fast.encode(&data);
                let cw_slow = slow.encode(&data);
                assert_eq!(cw_fast, cw_slow, "t = {t}: encode mismatch");

                let errors = rng.random_range(0..=t + 2);
                let flips = vapp_check::gen::distinct(rng, 0..fast.codeword_bits(), errors);
                let mut a = cw_fast;
                let mut b = cw_slow;
                for &pos in &flips {
                    a.flip(pos);
                    b.flip(pos);
                }
                let out_fast = fast.decode(&mut a);
                let out_slow = slow.decode(&mut b);
                assert_eq!(out_fast, out_slow, "t = {t} flips = {flips:?}");
                assert_eq!(a, b, "t = {t} flips = {flips:?}: codeword mismatch");
            });
        }
    }
}
