//! The multi-level-cell PCM substrate model (paper §2.2, §6.2).
//!
//! Eight resistance levels per cell (3 bits), Gray-coded so that the
//! dominant error — reading a neighbouring level — flips a single bit.
//! Two error sources, following Guo et al.: Gaussian write/read noise from
//! cheap access circuitry, and *resistance drift* that grows
//! logarithmically with time and is stronger for higher levels. The
//! substrate is "optimized" the way the paper assumes: level placement is
//! biased to pre-compensate drift at the scrubbing interval, equalising
//! per-level error rates, and the noise figure is calibrated so the raw
//! bit error rate at a 3-month scrub is ≈ 1e-3.

use vapp_rand::rngs::StdRng;
use vapp_rand::RngExt;

/// Default scrubbing (refresh) interval: three months (paper §6.2).
pub const DEFAULT_SCRUB_DAYS: f64 = 90.0;

/// The paper's raw bit error rate for the 8-level substrate.
pub const TARGET_RAW_BER: f64 = 1e-3;

/// Gray code of a level index.
#[inline]
pub fn gray(i: u8) -> u8 {
    i ^ (i >> 1)
}

/// Standard normal CDF via an Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7 — far below the rates we care about).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Configuration of the cell model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MlcConfig {
    /// Number of resistance levels (8 in the paper).
    pub levels: u8,
    /// Write/read Gaussian noise σ in normalised resistance units.
    pub sigma: f64,
    /// Drift magnitude coefficient (scales with the level index).
    pub drift_nu: f64,
    /// Scrubbing interval in days.
    pub scrub_days: f64,
    /// Whether level placement is drift-biased (Guo-style optimisation).
    pub biased: bool,
}

impl Default for MlcConfig {
    fn default() -> Self {
        MlcConfig {
            levels: 8,
            sigma: 0.02,
            drift_nu: 0.03,
            scrub_days: DEFAULT_SCRUB_DAYS,
            biased: true,
        }
    }
}

/// The optimised MLC PCM substrate.
#[derive(Clone, Debug)]
pub struct MlcSubstrate {
    cfg: MlcConfig,
    /// Level write targets (analog domain [0, 1]).
    centers: Vec<f64>,
    /// Read decision thresholds between adjacent levels (len = levels − 1).
    thresholds: Vec<f64>,
    /// Inverse Gray-code LUT: `gray_inv[gray(i)] = i` for each level,
    /// built once so the per-cell write path is a single index.
    gray_inv: [u8; 16],
}

impl MlcSubstrate {
    /// Builds the substrate: places levels, biases them against drift (if
    /// configured), and sets read thresholds between the *drifted* means at
    /// the mid-scrub reference time.
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is a power of two in 2..=16 and parameters
    /// are positive.
    pub fn new(cfg: MlcConfig) -> Self {
        assert!(
            cfg.levels.is_power_of_two() && (2..=16).contains(&cfg.levels),
            "levels must be a power of two in 2..=16"
        );
        assert!(cfg.sigma > 0.0 && cfg.drift_nu >= 0.0 && cfg.scrub_days > 0.0);
        let l = cfg.levels as usize;
        let uniform: Vec<f64> = (0..l).map(|i| i as f64 / (l - 1) as f64).collect();
        // Reference read time for biasing: drift grows with ln(1 + t), so
        // the point that balances start-of-life against scrub-time error
        // is where the drift reaches *half* its scrub-time value:
        // ln(1 + t_ref) = ln(1 + T)/2  ⇒  t_ref = sqrt(1 + T) − 1.
        let t_ref = (1.0 + cfg.scrub_days).sqrt() - 1.0;
        let centers: Vec<f64> = if cfg.biased {
            // Pre-compensate the expected drift so the *drifted* means sit
            // uniformly at the reference time (non-uniform partitioning of
            // the resistance range, paper §2.2).
            (0..l)
                .map(|i| uniform[i] - drift_shift(&cfg, i as u8, t_ref))
                .collect()
        } else {
            uniform
        };
        // Thresholds: the optimised substrate places them between the
        // *drifted* means at the reference time; the naive substrate uses
        // plain midpoints (no drift awareness) — the difference is Guo et
        // al.'s non-uniform partitioning.
        let thresholds = if cfg.biased {
            let mean = |i: usize| centers[i] + drift_shift(&cfg, i as u8, t_ref);
            (0..l - 1).map(|i| (mean(i) + mean(i + 1)) / 2.0).collect()
        } else {
            (0..l - 1)
                .map(|i| (centers[i] + centers[i + 1]) / 2.0)
                .collect()
        };
        let mut gray_inv = [0u8; 16];
        for i in 0..cfg.levels {
            gray_inv[gray(i) as usize] = i;
        }
        MlcSubstrate {
            cfg,
            centers,
            thresholds,
            gray_inv,
        }
    }

    /// Calibrates σ (by bisection) so the raw BER at the scrub interval
    /// matches `target`, with all other parameters from `cfg`. This is the
    /// paper's premise: an 8-level substrate tuned to raw BER 1e-3 (§6.2).
    ///
    /// # Panics
    ///
    /// Panics if the target is unreachable within the search bracket.
    pub fn tuned_for_ber(mut cfg: MlcConfig, target: f64) -> Self {
        assert!(
            target > 0.0 && target < 0.5,
            "target BER must be in (0, 0.5)"
        );
        let (mut lo, mut hi) = (1e-4, 0.5);
        for _ in 0..80 {
            let mid = (lo + hi) / 2.0;
            cfg.sigma = mid;
            let ber = MlcSubstrate::new(cfg).raw_ber(cfg.scrub_days);
            if ber < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        cfg.sigma = (lo + hi) / 2.0;
        let s = MlcSubstrate::new(cfg);
        let achieved = s.raw_ber(cfg.scrub_days);
        assert!(
            (achieved.log10() - target.log10()).abs() < 0.1,
            "calibration failed: {achieved:e} vs {target:e}"
        );
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> &MlcConfig {
        &self.cfg
    }

    /// Bits stored per cell (log2 of the level count).
    pub fn bits_per_cell(&self) -> u32 {
        self.cfg.levels.trailing_zeros()
    }

    /// Level index whose Gray code is `g` (precomputed inverse of
    /// [`gray`]).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the Gray code of a valid level.
    #[inline]
    pub fn gray_inverse(&self, g: u8) -> u8 {
        assert!(g < self.cfg.levels, "not a valid Gray code for this cell");
        self.gray_inv[g as usize]
    }

    /// Level write targets.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Probability matrix `P[i][j]` of reading level `j` after writing
    /// level `i` and waiting `t_days`.
    #[allow(clippy::needless_range_loop)] // level indices i, j are the semantics
    pub fn level_error_matrix(&self, t_days: f64) -> Vec<Vec<f64>> {
        let l = self.cfg.levels as usize;
        let mut m = vec![vec![0.0; l]; l];
        for i in 0..l {
            let mean = self.centers[i] + drift_shift(&self.cfg, i as u8, t_days);
            for j in 0..l {
                let lo = if j == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.thresholds[j - 1]
                };
                let hi = if j == l - 1 {
                    f64::INFINITY
                } else {
                    self.thresholds[j]
                };
                let p_lo = if lo.is_finite() {
                    normal_cdf((lo - mean) / self.cfg.sigma)
                } else {
                    0.0
                };
                let p_hi = if hi.is_finite() {
                    normal_cdf((hi - mean) / self.cfg.sigma)
                } else {
                    1.0
                };
                m[i][j] = (p_hi - p_lo).max(0.0);
            }
        }
        m
    }

    /// Analytic raw bit error rate after `t_days`, assuming uniformly
    /// distributed stored levels and Gray-coded bits.
    #[allow(clippy::needless_range_loop)] // level indices i, j are the semantics
    pub fn raw_ber(&self, t_days: f64) -> f64 {
        let l = self.cfg.levels as usize;
        let bits = self.bits_per_cell() as f64;
        let m = self.level_error_matrix(t_days);
        let mut ber = 0.0;
        for i in 0..l {
            for j in 0..l {
                if i == j {
                    continue;
                }
                let flips = (gray(i as u8) ^ gray(j as u8)).count_ones() as f64;
                ber += m[i][j] * flips / (l as f64 * bits);
            }
        }
        ber
    }

    /// Writes one level and reads it back after `t_days` (Monte Carlo).
    pub fn write_read(&self, level: u8, t_days: f64, rng: &mut StdRng) -> u8 {
        assert!(level < self.cfg.levels, "level out of range");
        let noise = gaussian(rng) * self.cfg.sigma;
        let analog = self.centers[level as usize] + drift_shift(&self.cfg, level, t_days) + noise;
        // Threshold detection.
        let mut read = 0u8;
        for (k, &th) in self.thresholds.iter().enumerate() {
            if analog > th {
                read = (k + 1) as u8;
            }
        }
        read
    }

    /// Batch Monte Carlo read: for each written level, the level read
    /// back after `t_days`, appended to `out`. Bit-identical to calling
    /// [`MlcSubstrate::write_read`] once per cell with the same RNG
    /// (same draw order, same float association), but hoists the
    /// per-level drifted means out of the loop — the dominant cost when
    /// reading whole arrays.
    ///
    /// # Panics
    ///
    /// Panics if any written level is out of range.
    pub fn read_levels(&self, written: &[u8], t_days: f64, rng: &mut StdRng, out: &mut Vec<u8>) {
        // `centers[l] + drift` first, `+ noise` second: the exact
        // association `write_read` uses, so results match to the ULP.
        let mut means = [0.0f64; 16];
        for l in 0..self.cfg.levels {
            means[l as usize] = self.centers[l as usize] + drift_shift(&self.cfg, l, t_days);
        }
        out.reserve(written.len());
        for &level in written {
            assert!(level < self.cfg.levels, "level out of range");
            let noise = gaussian(rng) * self.cfg.sigma;
            let analog = means[level as usize] + noise;
            let mut read = 0u8;
            for (k, &th) in self.thresholds.iter().enumerate() {
                if analog > th {
                    read = (k + 1) as u8;
                }
            }
            out.push(read);
        }
    }

    /// Monte Carlo estimate of the raw BER over `cells` random cells.
    pub fn monte_carlo_ber(&self, cells: usize, t_days: f64, rng: &mut StdRng) -> f64 {
        let bits = self.bits_per_cell() as usize;
        let mut flipped = 0usize;
        for _ in 0..cells {
            let level = rng.random_range(0..self.cfg.levels);
            let read = self.write_read(level, t_days, rng);
            flipped += (gray(level) ^ gray(read)).count_ones() as usize;
        }
        flipped as f64 / (cells * bits) as f64
    }
}

/// Resistance drift displacement for a level after `t_days` (log-time
/// growth, stronger for higher levels — the PCM signature).
fn drift_shift(cfg: &MlcConfig, level: u8, t_days: f64) -> f64 {
    let frac = level as f64 / (cfg.levels - 1) as f64;
    cfg.drift_nu * frac * (1.0 + t_days).ln() / (1.0 + DEFAULT_SCRUB_DAYS).ln()
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A precise single-level-cell substrate for the density baseline
/// (paper §7.3 compares against SLC with no error correction).
#[derive(Clone, Copy, Debug, Default)]
pub struct SlcSubstrate;

impl SlcSubstrate {
    /// Bits per cell.
    pub fn bits_per_cell(&self) -> u32 {
        1
    }

    /// The precise-storage error rate (effectively error-free).
    pub fn raw_ber(&self) -> f64 {
        1e-16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapp_rand::SeedableRng;

    #[test]
    fn gray_codes_differ_by_one_bit_between_neighbors() {
        for i in 0u8..7 {
            assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(-6.0) < 1e-8);
        assert!(normal_cdf(6.0) > 1.0 - 1e-8);
        assert!((normal_cdf(1.0) - 0.8413).abs() < 1e-3);
    }

    #[test]
    fn error_matrix_rows_sum_to_one() {
        let s = MlcSubstrate::new(MlcConfig::default());
        for row in s.level_error_matrix(30.0) {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ber_grows_with_time_when_unbiased() {
        let s = MlcSubstrate::new(MlcConfig {
            biased: false,
            ..Default::default()
        });
        let early = s.raw_ber(1.0);
        let late = s.raw_ber(90.0);
        assert!(late > early, "drift must worsen BER: {early:e} vs {late:e}");
    }

    #[test]
    fn biased_substrate_balances_start_and_scrub() {
        // Drift-aware placement equalises error rates across the scrub
        // window instead of letting them explode at the end.
        let s = MlcSubstrate::new(MlcConfig::default());
        let start = s.raw_ber(0.0);
        let end = s.raw_ber(DEFAULT_SCRUB_DAYS);
        let ratio = (start.log10() - end.log10()).abs();
        assert!(ratio < 2.0, "start {start:e} vs scrub-end {end:e}");
    }

    #[test]
    fn biasing_reduces_scrub_time_ber() {
        let biased = MlcSubstrate::new(MlcConfig {
            biased: true,
            ..Default::default()
        });
        let unbiased = MlcSubstrate::new(MlcConfig {
            biased: false,
            ..Default::default()
        });
        let b = biased.raw_ber(DEFAULT_SCRUB_DAYS);
        let u = unbiased.raw_ber(DEFAULT_SCRUB_DAYS);
        assert!(b < u, "biasing should help: {b:e} vs {u:e}");
    }

    #[test]
    fn calibration_hits_target_ber() {
        let s = MlcSubstrate::tuned_for_ber(MlcConfig::default(), TARGET_RAW_BER);
        let ber = s.raw_ber(DEFAULT_SCRUB_DAYS);
        assert!(
            (ber.log10() - (-3.0)).abs() < 0.1,
            "calibrated BER {ber:e} not ~1e-3"
        );
        assert_eq!(s.bits_per_cell(), 3);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let s = MlcSubstrate::tuned_for_ber(MlcConfig::default(), 1e-2);
        let mut rng = StdRng::seed_from_u64(7);
        let mc = s.monte_carlo_ber(200_000, DEFAULT_SCRUB_DAYS, &mut rng);
        let analytic = s.raw_ber(DEFAULT_SCRUB_DAYS);
        let ratio = mc / analytic;
        assert!(
            (0.7..1.4).contains(&ratio),
            "MC {mc:e} vs analytic {analytic:e}"
        );
    }

    #[test]
    fn write_read_is_identity_without_noise_sources() {
        let s = MlcSubstrate::new(MlcConfig {
            sigma: 1e-6,
            drift_nu: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        for level in 0..8 {
            assert_eq!(s.write_read(level, 90.0, &mut rng), level);
        }
    }

    #[test]
    fn read_levels_matches_write_read_sequence() {
        let s = MlcSubstrate::tuned_for_ber(MlcConfig::default(), 1e-2);
        let written: Vec<u8> = (0..997u32).map(|i| (i % 8) as u8).collect();
        for t_days in [0.0, 1.0, DEFAULT_SCRUB_DAYS, 400.0] {
            let mut a = StdRng::seed_from_u64(17);
            let mut b = StdRng::seed_from_u64(17);
            let mut batch = Vec::new();
            s.read_levels(&written, t_days, &mut a, &mut batch);
            let per_cell: Vec<u8> = written
                .iter()
                .map(|&l| s.write_read(l, t_days, &mut b))
                .collect();
            assert_eq!(batch, per_cell, "t_days={t_days}");
        }
    }

    #[test]
    fn slc_is_precise_and_single_bit() {
        let slc = SlcSubstrate;
        assert_eq!(slc.bits_per_cell(), 1);
        assert!(slc.raw_ber() <= 1e-15);
    }
}
