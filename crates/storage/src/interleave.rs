//! Block interleaver: spreads physically contiguous damage (a lost NAND
//! page, a blocky codec artifact) across many codewords so each codeword
//! sees only a few symbols of a burst.
//!
//! The mapping is the classic row/column block interleaver. Logical
//! units (codeword symbols or bits) fill a `depth × cols` matrix
//! row-major — row `r` is codeword `r` — and the physical medium stores
//! the matrix column-major. A physical burst of length `B` therefore
//! touches at most `ceil(B / depth) + 1` units of any one codeword.
//!
//! Partial tails are first-class: `total` need not be a multiple of
//! `depth`. Cells whose row-major index is `>= total` simply do not
//! exist, and the column-major read skips them, so the mapping is a
//! bijection on `[0, total)` for every `(depth, total)` pair — pinned by
//! property tests in `tests/substrate_props.rs`.

/// A bijective row/column block interleaver over `total` units with
/// `depth` rows (one row per codeword).
#[derive(Clone, Debug)]
pub struct Interleaver {
    depth: usize,
    cols: usize,
    total: usize,
    /// forward[logical] = physical
    forward: Vec<u32>,
    /// inverse[physical] = logical
    inverse: Vec<u32>,
}

impl Interleaver {
    /// Builds the interleaver. `depth` is clamped to `total` (a matrix
    /// with more rows than cells has empty rows, which is harmless but
    /// pointless).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`, `total == 0`, or `total` does not fit the
    /// `u32` index space.
    pub fn new(depth: usize, total: usize) -> Self {
        assert!(depth > 0, "interleaver depth must be positive");
        assert!(total > 0, "interleaver needs at least one unit");
        assert!(u32::try_from(total).is_ok(), "interleaver too large");
        let depth = depth.min(total);
        let cols = total.div_ceil(depth);
        let mut forward = vec![0u32; total];
        let mut inverse = vec![0u32; total];
        let mut phys = 0u32;
        for c in 0..cols {
            for r in 0..depth {
                let logical = r * cols + c;
                if logical < total {
                    forward[logical] = phys;
                    inverse[phys as usize] = logical as u32;
                    phys += 1;
                }
            }
        }
        debug_assert_eq!(phys as usize, total);
        Interleaver {
            depth,
            cols,
            total,
            forward,
            inverse,
        }
    }

    /// Number of rows (codewords) in the matrix.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of columns (units per full row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total units mapped.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the interleaver maps nothing (never: `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Physical position of logical unit `l` (row-major index, i.e.
    /// `codeword * cols + offset`).
    pub fn forward(&self, l: usize) -> usize {
        self.forward[l] as usize
    }

    /// Logical unit stored at physical position `p`.
    pub fn inverse(&self, p: usize) -> usize {
        self.inverse[p] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matrix_roundtrips() {
        let il = Interleaver::new(4, 12);
        for l in 0..12 {
            assert_eq!(il.inverse(il.forward(l)), l);
        }
        // Row 0 (logical 0..3) lands at physical stride `depth`.
        assert_eq!(il.forward(0), 0);
        assert_eq!(il.forward(1), 4);
        assert_eq!(il.forward(2), 8);
    }

    #[test]
    fn partial_tail_is_still_a_bijection() {
        let il = Interleaver::new(5, 13);
        let mut seen = [false; 13];
        for l in 0..13 {
            let p = il.forward(l);
            assert!(!seen[p], "physical {p} hit twice");
            seen[p] = true;
            assert_eq!(il.inverse(p), l);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn burst_spreads_across_rows() {
        // A physical burst of `depth` consecutive units touches each row
        // at most twice (once per spanned column).
        let il = Interleaver::new(8, 64);
        let mut per_row = [0usize; 8];
        for p in 10..18 {
            per_row[il.inverse(p) / il.cols()] += 1;
        }
        assert!(per_row.iter().all(|&c| c <= 2), "{per_row:?}");
    }
}
