//! Monte Carlo bit-error injection (paper §6.4).
//!
//! The paper models read/write-induced errors by running each video
//! through a stochastic model 30 times with errors at random locations,
//! checking that per-video flip counts follow the binomial distribution,
//! and — at very low rates — forcing at least one flip and scaling the
//! measured loss by the probability that a flip occurs at all.
//!
//! This crate picks *which bits flip*; applying them to payload bytes is
//! the caller's job (keeping the simulator independent of the data
//! layout).
//!
//! # Example
//!
//! ```
//! use vapp_sim::{pick_positions, Trials};
//! use vapp_rand::SeedableRng;
//!
//! let mut rng = vapp_rand::rngs::StdRng::seed_from_u64(1);
//! let flips = pick_positions(&[0..10_000], 1e-2, &mut rng);
//! assert!(!flips.is_empty());
//! assert!(flips.iter().all(|&p| p < 10_000));
//! ```

use std::collections::BTreeSet;
use std::ops::Range;
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngCore, RngExt, SeedableRng, SplitMix64};

/// The paper's trial count per (video, error-rate) point.
pub const DEFAULT_TRIALS: usize = 30;

/// Expands a master seed into `count` independent sub-seeds by streaming
/// SplitMix64. Deriving every sub-seed *up front* makes unit `i`'s RNG
/// stream a pure function of `(master_seed, i)` — independent of how many
/// units run, in what order, or on which thread — which is the invariant
/// the parallel refactor locks in (see DESIGN.md §8).
pub fn derive_subseeds(master_seed: u64, count: usize) -> Vec<u64> {
    let mut sm = SplitMix64::new(master_seed);
    (0..count).map(|_| sm.next_u64()).collect()
}

/// Samples the number of flips among `n_bits` independent bits at per-bit
/// rate `rate`. Uses a Poisson sampler (exact Knuth below λ=30, normal
/// approximation above), which matches the binomial to within its own
/// sampling noise for the small rates used here.
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1]`.
pub fn sample_flip_count(n_bits: u64, rate: f64, rng: &mut StdRng) -> u64 {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    if n_bits == 0 || rate == 0.0 {
        return 0;
    }
    let lambda = n_bits as f64 * rate;
    let k = if lambda < 30.0 {
        // Knuth's product method.
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= limit {
                break;
            }
            k += 1;
        }
        k
    } else {
        // Normal approximation with continuity correction.
        let g = gaussian(rng);
        (lambda + g * lambda.sqrt()).round().max(0.0) as u64
    };
    k.min(n_bits)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Total bits covered by a set of (disjoint) ranges.
pub fn total_bits(ranges: &[Range<u64>]) -> u64 {
    ranges.iter().map(|r| r.end.saturating_sub(r.start)).sum()
}

/// Maps an index into the concatenated range space back to a global bit
/// position.
fn index_to_position(ranges: &[Range<u64>], mut idx: u64) -> u64 {
    for r in ranges {
        let len = r.end - r.start;
        if idx < len {
            return r.start + idx;
        }
        idx -= len;
    }
    unreachable!("index beyond range space")
}

/// Picks distinct flip positions inside `ranges` at per-bit `rate`.
/// Positions are global bit offsets (sorted, deduplicated).
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1]`.
pub fn pick_positions(ranges: &[Range<u64>], rate: f64, rng: &mut StdRng) -> Vec<u64> {
    let n = total_bits(ranges);
    let k = sample_flip_count(n, rate, rng);
    vapp_obs::histogram!("sim.flips.per_draw", k);
    pick_k_positions(ranges, k, rng)
}

/// Picks exactly `k` distinct positions uniformly inside `ranges`.
pub fn pick_k_positions(ranges: &[Range<u64>], k: u64, rng: &mut StdRng) -> Vec<u64> {
    let n = total_bits(ranges);
    let k = k.min(n);
    let mut chosen = BTreeSet::new();
    while (chosen.len() as u64) < k {
        let idx = rng.random_range(0..n);
        chosen.insert(index_to_position(ranges, idx));
    }
    chosen.into_iter().collect()
}

/// Result of a forced-flip draw (paper §6.4's very-low-rate protocol).
#[derive(Clone, Debug, PartialEq)]
pub struct ForcedDraw {
    /// The flip positions (at least one, unless the range space is empty).
    pub positions: Vec<u64>,
    /// Whether the flip had to be forced (natural draw produced none).
    pub forced: bool,
}

/// Like [`pick_positions`] but guarantees at least one flip, reporting
/// whether it had to be forced. The caller scales measured quality loss by
/// `prob_any_flip` when `forced` is true.
pub fn pick_positions_forced(ranges: &[Range<u64>], rate: f64, rng: &mut StdRng) -> ForcedDraw {
    let natural = pick_positions(ranges, rate, rng);
    if !natural.is_empty() {
        return ForcedDraw {
            positions: natural,
            forced: false,
        };
    }
    if total_bits(ranges) == 0 {
        return ForcedDraw {
            positions: Vec::new(),
            forced: false,
        };
    }
    vapp_obs::counter!("sim.draws.forced");
    ForcedDraw {
        positions: pick_k_positions(ranges, 1, rng),
        forced: true,
    }
}

/// A reproducible set of Monte Carlo trials: trial `i` always sees the
/// same RNG stream for a given master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trials {
    /// Number of trials (the paper uses 30).
    pub count: usize,
    /// Master seed; each trial derives its own stream.
    pub master_seed: u64,
}

impl Default for Trials {
    fn default() -> Self {
        Trials {
            count: DEFAULT_TRIALS,
            master_seed: 0xA55A_1234,
        }
    }
}

impl Trials {
    /// Creates a trial plan.
    pub fn new(count: usize, master_seed: u64) -> Self {
        Trials { count, master_seed }
    }

    /// Runs `f` once per trial with a trial-specific RNG, collecting the
    /// returned measurements in trial order. Trials fan out across
    /// [`vapp_par`] workers; each trial's RNG is seeded from a SplitMix64
    /// sub-seed derived up front, so the result vector is byte-identical
    /// at any `VAPP_THREADS` setting.
    pub fn run<T: Send>(&self, f: impl Fn(usize, &mut StdRng) -> T + Sync) -> Vec<T> {
        let trials = self.count;
        let _span = vapp_obs::span!("sim.trials.run", trials);
        vapp_par::par_map(derive_subseeds(self.master_seed, self.count), |i, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(i, &mut rng)
        })
    }
}

/// Checks that observed flip counts are consistent with Binomial(n, p):
/// the sample mean must lie within `z` standard errors of n·p (the
/// paper's §6.4 distribution check).
pub fn binomial_mean_check(counts: &[u64], n_bits: u64, rate: f64, z: f64) -> bool {
    assert!(!counts.is_empty(), "need at least one count");
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    let expected = n_bits as f64 * rate;
    let var = n_bits as f64 * rate * (1.0 - rate);
    let se = (var / counts.len() as f64).sqrt();
    (mean - expected).abs() <= z * se.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000u64;
        let rate = 1e-3;
        let counts: Vec<u64> = (0..200)
            .map(|_| sample_flip_count(n, rate, &mut rng))
            .collect();
        assert!(binomial_mean_check(&counts, n, rate, 4.0));
    }

    #[test]
    fn high_lambda_path_also_sane() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 1_000_000u64;
        let rate = 1e-3; // λ = 1000 → normal path
        let counts: Vec<u64> = (0..100)
            .map(|_| sample_flip_count(n, rate, &mut rng))
            .collect();
        assert!(binomial_mean_check(&counts, n, rate, 4.0));
    }

    #[test]
    fn zero_rate_and_zero_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_flip_count(0, 0.5, &mut rng), 0);
        assert_eq!(sample_flip_count(1000, 0.0, &mut rng), 0);
        assert!(pick_positions(&[], 0.1, &mut rng).is_empty());
    }

    #[test]
    fn positions_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(8);
        let ranges = vec![100..200u64, 1000..1100];
        for _ in 0..50 {
            for p in pick_positions(&ranges, 0.05, &mut rng) {
                assert!(
                    (100..200).contains(&p) || (1000..1100).contains(&p),
                    "position {p} outside ranges"
                );
            }
        }
    }

    #[test]
    fn positions_are_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(9);
        let pos = pick_k_positions(&[0..50], 50, &mut rng);
        assert_eq!(pos.len(), 50);
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn forced_draw_always_flips_at_low_rates() {
        let mut rng = StdRng::seed_from_u64(10);
        let ranges = vec![0..10_000u64];
        let mut forced_seen = false;
        for _ in 0..20 {
            let d = pick_positions_forced(&ranges, 1e-12, &mut rng);
            assert_eq!(d.positions.len(), 1);
            if d.forced {
                forced_seen = true;
            }
        }
        assert!(forced_seen, "1e-12 over 1e4 bits should force flips");
    }

    #[test]
    fn trials_are_reproducible_and_independent() {
        let t = Trials::new(5, 42);
        let a = t.run(|i, rng| (i, rng.random::<u64>()));
        let b = t.run(|i, rng| (i, rng.random::<u64>()));
        assert_eq!(a, b);
        // Different trials see different streams.
        assert_ne!(a[0].1, a[1].1);
    }

    #[test]
    fn subseeds_are_stable_and_distinct() {
        let a = derive_subseeds(7, 16);
        assert_eq!(a, derive_subseeds(7, 16));
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "sub-seeds must not collide");
        assert_ne!(a, derive_subseeds(8, 16));
    }

    #[test]
    fn trials_are_thread_count_invariant() {
        let t = Trials::new(9, 1234);
        let seq = vapp_par::with_threads(1, || t.run(|i, rng| (i, rng.random::<u64>())));
        let par = vapp_par::with_threads(8, || t.run(|i, rng| (i, rng.random::<u64>())));
        assert_eq!(seq, par);
    }

    #[test]
    fn binomial_check_rejects_garbage() {
        let counts = vec![5000u64; 10];
        assert!(!binomial_mean_check(&counts, 100_000, 1e-3, 4.0));
    }
}
