//! The §7.1 methodology validation as an automated invariant: bins of
//! higher computed importance must suffer more measured damage.

use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::pipeline::flip_global_bits;
use videoapp::{equal_storage_bins, DependencyGraph, ImportanceMap};

#[test]
fn importance_bins_predict_measured_damage_order() {
    let video = ClipSpec::new(96, 64, 16, SceneKind::MovingBlocks)
        .seed(2024)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let bins = equal_storage_bins(&result.analysis, &imp, 4);
    let error_free = decode(&result.stream);

    // Inject the same error rate into each bin (several trials, mean
    // loss) and check rank agreement between bin order and damage order.
    let rate = 2e-3;
    let mut losses = Vec::new();
    for b in &bins {
        let mut total = 0.0;
        let trials = 6;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(900 + t);
            let flips = vapp_sim::pick_positions(&b.ranges, rate, &mut rng);
            let mut dirty = result.stream.clone();
            flip_global_bits(&mut dirty, &flips);
            total += video_psnr(&error_free, &decode(&dirty));
        }
        losses.push(total / trials as f64);
    }
    // PSNR must (weakly) decrease from bin 0 to bin 3: count inversions.
    let inversions = losses
        .windows(2)
        .filter(|w| w[1] > w[0] + 1.0) // allow 1 dB of noise
        .count();
    assert_eq!(
        inversions, 0,
        "bin damage order contradicts importance: {losses:?}"
    );
    // And the extremes must be clearly separated.
    assert!(
        losses[0] > losses[3] + 3.0,
        "least vs most important bins not separated: {losses:?}"
    );
}

/// Tier-2 soak: the bin-damage ordering on a larger clip with more
/// trials per bin, so rank agreement is checked against a much tighter
/// noise floor.
///
/// Run with `cargo test -- --ignored` (CI tier-2 job).
#[test]
#[ignore = "tier-2 soak: ~minutes of Monte Carlo; run via `cargo test -- --ignored`"]
fn soak_importance_bins_damage_order_large_clip() {
    let video = ClipSpec::new(128, 96, 24, SceneKind::MovingBlocks)
        .seed(4096)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let bins = equal_storage_bins(&result.analysis, &imp, 4);
    let error_free = decode(&result.stream);

    let rate = 2e-3;
    let mut losses = Vec::new();
    for b in &bins {
        let mut total = 0.0;
        let trials = 24;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(7000 + t);
            let flips = vapp_sim::pick_positions(&b.ranges, rate, &mut rng);
            let mut dirty = result.stream.clone();
            flip_global_bits(&mut dirty, &flips);
            total += video_psnr(&error_free, &decode(&dirty));
        }
        losses.push(total / trials as f64);
    }
    let inversions = losses
        .windows(2)
        .filter(|w| w[1] > w[0] + 0.5) // tighter noise allowance than tier-1
        .count();
    assert_eq!(
        inversions, 0,
        "bin damage order contradicts importance: {losses:?}"
    );
    assert!(
        losses[0] > losses[3] + 3.0,
        "least vs most important bins not separated: {losses:?}"
    );
}

#[test]
fn importance_correlates_with_single_flip_damage() {
    // Per-MB check on one P frame: flip one bit in a high-importance MB
    // and in a low-importance MB; the former must do at least as much
    // damage to the whole video.
    let video = ClipSpec::new(96, 64, 12, SceneKind::Panning)
        .seed(7)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 12,
        bframes: 0,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let error_free = decode(&result.stream);
    let bases = videoapp::payload_layout(&result.analysis);

    // Average over several P frames and several flip positions per MB —
    // a single flip's damage is noisy (it depends on which syntax element
    // it lands in), but the means must respect the importance order.
    let mut first_total = 0.0;
    let mut last_total = 0.0;
    let mut n = 0;
    for (fi, f) in result.analysis.frames.iter().enumerate().skip(1) {
        let psnr_for = |mb: usize| {
            let a = &f.mbs[mb];
            let span = a.bit_end.saturating_sub(a.bit_start).max(1);
            let mut total = 0.0;
            for k in 1..=3u64 {
                let mut dirty = result.stream.clone();
                let pos = bases[fi] + a.bit_start + span * k / 4;
                flip_global_bits(&mut dirty, &[pos]);
                total += video_psnr(&error_free, &decode(&dirty));
            }
            total / 3.0
        };
        first_total += psnr_for(0);
        last_total += psnr_for(f.mbs.len() - 1);
        assert!(imp.get(fi, 0) > imp.get(fi, f.mbs.len() - 1));
        n += 1;
    }
    let first = first_total / n as f64;
    let last = last_total / n as f64;
    assert!(
        first <= last + 1.0,
        "high-importance flips must hurt at least as much on average: {first} vs {last}"
    );
}
