//! Encrypted approximate storage (paper §5): the full pipeline with
//! per-stream encryption, verifying the §5.1 requirements end to end.

use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_crypto::CipherMode;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{merge_streams, split_streams, DependencyGraph, ImportanceMap, PivotTable};

const KEY: [u8; 16] = [0xAB; 16];
const IV: [u8; 16] = [0xCD; 16];

fn setup() -> (vapp_codec::EncodeResult, PivotTable) {
    let video = ClipSpec::new(96, 64, 12, SceneKind::MovingBlocks)
        .seed(55)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 6,
        bframes: 1,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[8.0, 64.0]);
    (result, table)
}

#[test]
fn encrypt_decrypt_is_lossless_for_compatible_modes() {
    let (result, table) = setup();
    for mode in [CipherMode::Ofb, CipherMode::Ctr] {
        let mut streams = split_streams(&result.stream, &table);
        streams.encrypt(mode, &KEY, &IV);
        streams.decrypt(mode, &KEY, &IV);
        let merged = merge_streams(&result.stream, &table, &streams);
        assert_eq!(decode(&merged), result.reconstruction, "{mode:?}");
    }
}

#[test]
fn ciphertext_flips_equal_plaintext_flips_requirement_3() {
    let (result, table) = setup();
    // Identical flip pattern applied to ciphertext vs plaintext.
    let flips: Vec<(usize, usize, u8)> =
        vec![(0, 3, 0x10), (0, 97, 0x01), (1, 11, 0x80), (2, 0, 0x04)];
    for mode in [CipherMode::Ofb, CipherMode::Ctr] {
        let mut encrypted = split_streams(&result.stream, &table);
        encrypted.encrypt(mode, &KEY, &IV);
        for &(level, byte, mask) in &flips {
            if byte < encrypted.level_data[level].len() {
                encrypted.level_data[level][byte] ^= mask;
            }
        }
        encrypted.decrypt(mode, &KEY, &IV);
        let via_ciphertext = decode(&merge_streams(&result.stream, &table, &encrypted));

        let mut plain = split_streams(&result.stream, &table);
        for &(level, byte, mask) in &flips {
            if byte < plain.level_data[level].len() {
                plain.level_data[level][byte] ^= mask;
            }
        }
        let via_plaintext = decode(&merge_streams(&result.stream, &table, &plain));
        assert_eq!(
            via_ciphertext, via_plaintext,
            "{mode:?} must be transparent"
        );
    }
}

#[test]
fn streams_use_distinct_keystreams() {
    // Two streams with identical plaintext prefixes must encrypt
    // differently (per-stream derived IVs, §5.3).
    let (result, table) = setup();
    let mut streams = split_streams(&result.stream, &table);
    // Force identical prefixes.
    let n = streams
        .level_data
        .iter()
        .map(|d| d.len())
        .min()
        .expect("has streams")
        .min(32);
    if n >= 16 {
        for d in streams.level_data.iter_mut() {
            for b in d[..n].iter_mut() {
                *b = 0x77;
            }
        }
        let plain = streams.clone();
        streams.encrypt(CipherMode::Ctr, &KEY, &IV);
        assert_ne!(
            streams.level_data[0][..n],
            streams.level_data[1][..n],
            "streams must not share keystreams"
        );
        let _ = plain;
    }
}
