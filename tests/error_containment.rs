//! Error-containment invariants (paper §3): damage stays within the GOP,
//! I frames resynchronise, slices bound in-frame propagation.

use vapp_codec::{decode, Encoder, EncoderConfig, FrameType};
use vapp_metrics::frame_psnr;
use vapp_workloads::{ClipSpec, SceneKind};

fn clip() -> vapp_media::Video {
    ClipSpec::new(96, 64, 16, SceneKind::Panning)
        .seed(21)
        .generate()
}

#[test]
fn damage_never_crosses_i_frame_boundaries() {
    let video = clip();
    let result = Encoder::new(EncoderConfig {
        keyint: 4,
        bframes: 0,
        ..EncoderConfig::default()
    })
    .encode(&video);

    // Corrupt the payload of the P frame at display 1 heavily.
    let mut dirty = result.stream.clone();
    let target = dirty
        .frames
        .iter()
        .position(|f| f.header.display_index == 1)
        .expect("frame 1 exists");
    for b in dirty.frames[target].payload.iter_mut() {
        *b ^= 0x55;
    }
    let decoded = decode(&dirty);

    for (d, (clean, got)) in result.reconstruction.iter().zip(decoded.iter()).enumerate() {
        let in_damaged_gop = (1..4).contains(&d);
        if in_damaged_gop {
            continue; // may or may not be visibly damaged
        }
        assert_eq!(
            clean, got,
            "display frame {d} outside the damaged GOP must be bit-exact"
        );
    }
    // The corrupted frame itself must actually be damaged.
    assert_ne!(result.reconstruction.get(1), decoded.get(1));
}

#[test]
fn b_frame_damage_stays_in_that_frame() {
    let video = clip();
    let result = Encoder::new(EncoderConfig {
        keyint: 16,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);

    // Find a B frame and trash its payload: B frames are unreferenced, so
    // every other frame must decode bit-exactly.
    let mut dirty = result.stream.clone();
    let target = dirty
        .frames
        .iter()
        .position(|f| f.header.frame_type == FrameType::B)
        .expect("stream has B frames");
    let display = dirty.frames[target].header.display_index as usize;
    for b in dirty.frames[target].payload.iter_mut() {
        *b = b.wrapping_add(0x3C);
    }
    let decoded = decode(&dirty);
    for (d, (clean, got)) in result.reconstruction.iter().zip(decoded.iter()).enumerate() {
        if d == display {
            assert_ne!(clean, got, "the B frame itself must be damaged");
        } else {
            assert_eq!(clean, got, "frame {d} must be untouched");
        }
    }
}

#[test]
fn slices_limit_in_frame_propagation() {
    let video = clip();
    // 96x64 → 4 MB rows → 4 slices of one row each.
    let result = Encoder::new(EncoderConfig {
        keyint: 16,
        bframes: 0,
        slices: 4,
        ..EncoderConfig::default()
    })
    .encode(&video);

    // Corrupt only the *last* slice of the I frame: earlier slices of that
    // frame must decode cleanly (coding errors cannot travel backwards or
    // across slice boundaries).
    let mut dirty = result.stream.clone();
    let frame = &mut dirty.frames[0];
    let ranges = frame.slice_ranges();
    let last = ranges.last().expect("has slices").clone();
    for b in frame.payload[last].iter_mut() {
        *b ^= 0xFF;
    }
    let decoded = decode(&dirty);
    let clean0 = result.reconstruction.get(0).expect("frame 0");
    let got0 = decoded.get(0).expect("frame 0");
    assert_ne!(clean0, got0, "the damaged slice must show");
    // Rows 0..3 of MBs = pixel rows 0..48 must be identical, except the
    // single row the in-loop deblocking filter touches across the slice
    // boundary (it adjusts p0 at y = 47 from q-side samples — standard
    // H.264 `disable_deblocking_filter_idc = 0` behaviour).
    for y in 0..47 {
        for x in 0..96 {
            assert_eq!(
                clean0.plane().get(x, y),
                got0.plane().get(x, y),
                "pixel ({x},{y}) in undamaged slices changed"
            );
        }
    }
}

#[test]
fn single_flip_damage_grows_toward_frame_start() {
    // The Fig. 3 effect as an invariant: a flip in the first MB of a P
    // frame damages at least as much as a flip in the last MB (averaged
    // over frames to ride out block-content luck).
    let video = clip();
    let result = Encoder::new(EncoderConfig {
        keyint: 16,
        bframes: 0,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let error_free = decode(&result.stream);
    let bases = videoapp::payload_layout(&result.analysis);

    let mut early_total = 0.0;
    let mut late_total = 0.0;
    let mut n = 0;
    for f in result
        .analysis
        .frames
        .iter()
        .filter(|f| f.frame_type == FrameType::P)
    {
        let first = &f.mbs[0];
        let last = f
            .mbs
            .iter()
            .rev()
            .find(|m| m.bits() > 0)
            .expect("nonempty frame");
        for (mb, acc) in [(first, &mut early_total), (last, &mut late_total)] {
            let mut dirty = result.stream.clone();
            videoapp::pipeline::flip_global_bits(
                &mut dirty,
                &[bases[f.coding_index] + (mb.bit_start + mb.bit_end) / 2],
            );
            let decoded = decode(&dirty);
            *acc += frame_psnr(
                error_free.get(f.display_index).expect("in range"),
                decoded.get(f.display_index).expect("in range"),
            );
        }
        n += 1;
    }
    assert!(n > 3, "need several P frames");
    assert!(
        early_total / n as f64 <= late_total / n as f64,
        "early-MB flips must hurt at least as much: early {early_total} vs late {late_total}"
    );
}
