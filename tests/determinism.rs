//! Tier-1 determinism: parallelism changes wall-clock, never results.
//!
//! Every RNG-consuming pipeline stage derives per-unit sub-seeds up
//! front (`vapp_sim::derive_subseeds`), so its output is a pure function
//! of the master seed — byte-identical at any worker count. These tests
//! pin that invariant by running each stage under `with_threads(1)` and
//! `with_threads(8)` and comparing outputs bit for bit, plus the
//! observability counters the parallel regions record (atomics commute,
//! so totals must reconcile exactly).

use std::sync::Arc;

use vapp_codec::{EncodeResult, Encoder, EncoderConfig};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::Trials;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::pipeline::measure_loss_curve;
use videoapp::{ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PivotTable, StoragePolicy};

fn fixture() -> (vapp_media::Video, EncodeResult, PivotTable) {
    let video = ClipSpec::new(96, 64, 8, SceneKind::MovingBlocks)
        .seed(11)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[4.0, 64.0]);
    (video, result, table)
}

#[test]
fn trials_run_is_thread_count_invariant() {
    let trials = Trials::new(13, 99);
    let seq = vapp_par::with_threads(1, || trials.run(|i, rng| (i, rng.random::<u64>())));
    let par = vapp_par::with_threads(8, || trials.run(|i, rng| (i, rng.random::<u64>())));
    assert_eq!(seq, par);
}

#[test]
fn store_load_is_thread_count_invariant_and_counters_reconcile() {
    let (_video, result, table) = fixture();
    let ladder = vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)];
    for exact in [false, true] {
        let policy = StoragePolicy {
            ladder_levels: ladder.clone(),
            thresholds: vec![4.0, 64.0],
            raw_ber: 1e-3,
            exact_bch: exact,
        };
        let run = |threads: usize, reg: Arc<Registry>| {
            with_registry(reg, || {
                vapp_par::with_threads(threads, || {
                    let store = ApproxStore::new(policy.clone());
                    let mut rng = StdRng::seed_from_u64(7);
                    store.store_load(&result.stream, &table, &mut rng)
                })
            })
        };
        let reg1 = Arc::new(Registry::new());
        let reg8 = Arc::new(Registry::new());
        let seq = run(1, reg1.clone());
        let par = run(8, reg8.clone());
        assert_eq!(seq, par, "exact={exact}: loaded stream differs");

        for (label, reg) in [("1 thread", &reg1), ("8 threads", &reg8)] {
            // Per-level flip tallies partition the global injected count.
            let injected = reg.counter("core.flips.injected").get();
            let per_level: u64 = (0..ladder.len())
                .map(|l| reg.counter(&format!("core.level.{l}.flips")).get())
                .sum();
            assert_eq!(per_level, injected, "exact={exact} {label}: flip partition");
            // Every BCH block decodes to exactly one outcome.
            let blocks = reg.counter("storage.bch.blocks").get();
            assert!(blocks > 0, "exact={exact} {label}: no blocks recorded");
            let outcomes = reg.counter("storage.bch.clean").get()
                + reg.counter("storage.bch.corrected").get()
                + reg.counter("storage.bch.uncorrectable").get();
            assert_eq!(outcomes, blocks, "exact={exact} {label}: block partition");
        }
        // Both worker counts recorded identical totals.
        for name in [
            "core.flips.injected",
            "storage.bch.blocks",
            "storage.bch.clean",
            "storage.bch.corrected",
            "storage.bch.uncorrectable",
        ] {
            assert_eq!(
                reg1.counter(name).get(),
                reg8.counter(name).get(),
                "exact={exact}: `{name}` differs across worker counts"
            );
        }
    }
}

#[test]
fn loss_curve_is_thread_count_invariant() {
    let (video, result, _table) = fixture();
    let ranges = [0..result.stream.payload_bits()];
    let rates = [1e-4, 1e-3, 1e-2];
    let trials = Trials::new(4, 55);
    let seq = vapp_par::with_threads(1, || {
        measure_loss_curve(&result.stream, &video, &ranges, &rates, trials)
    });
    let par = vapp_par::with_threads(8, || {
        measure_loss_curve(&result.stream, &video, &ranges, &rates, trials)
    });
    for &r in &rates {
        assert_eq!(
            seq.loss_at(r).to_bits(),
            par.loss_at(r).to_bits(),
            "rate {r}: loss differs across worker counts"
        );
    }
}
