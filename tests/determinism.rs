//! Tier-1 determinism: parallelism changes wall-clock, never results.
//!
//! Every RNG-consuming pipeline stage derives per-unit sub-seeds up
//! front (`vapp_sim::derive_subseeds`), so its output is a pure function
//! of the master seed — byte-identical at any worker count. These tests
//! pin that invariant by running each stage under `with_threads(1)` and
//! `with_threads(8)` and comparing outputs bit for bit, plus the
//! observability counters the parallel regions record (atomics commute,
//! so totals must reconcile exactly).

use std::sync::Arc;

use vapp_codec::{EncodeResult, Encoder, EncoderConfig};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::Trials;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::pipeline::measure_loss_curve;
use videoapp::{
    burst_erasure, data_in_video, mlc_pcm, ApproxStore, BurstConfig, DependencyGraph, EcScheme,
    ImportanceMap, PivotTable, StoragePolicy, Substrate, VideoChannelConfig,
};

fn fixture() -> (vapp_media::Video, EncodeResult, PivotTable) {
    let video = ClipSpec::new(96, 64, 8, SceneKind::MovingBlocks)
        .seed(11)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[4.0, 64.0]);
    (video, result, table)
}

#[test]
fn trials_run_is_thread_count_invariant() {
    let trials = Trials::new(13, 99);
    let seq = vapp_par::with_threads(1, || trials.run(|i, rng| (i, rng.random::<u64>())));
    let par = vapp_par::with_threads(8, || trials.run(|i, rng| (i, rng.random::<u64>())));
    assert_eq!(seq, par);
}

#[test]
fn store_load_is_thread_count_invariant_and_counters_reconcile() {
    let (_video, result, table) = fixture();
    let ladder = vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)];
    for exact in [false, true] {
        let policy = StoragePolicy {
            ladder_levels: ladder.clone(),
            thresholds: vec![4.0, 64.0],
            substrate: mlc_pcm(1e-3),
            exact_bch: exact,
        };
        let run = |threads: usize, reg: Arc<Registry>| {
            with_registry(reg, || {
                vapp_par::with_threads(threads, || {
                    let store = ApproxStore::new(policy.clone());
                    let mut rng = StdRng::seed_from_u64(7);
                    store.store_load(&result.stream, &table, &mut rng)
                })
            })
        };
        let reg1 = Arc::new(Registry::new());
        let reg8 = Arc::new(Registry::new());
        let seq = run(1, reg1.clone());
        let par = run(8, reg8.clone());
        assert_eq!(seq, par, "exact={exact}: loaded stream differs");

        for (label, reg) in [("1 thread", &reg1), ("8 threads", &reg8)] {
            // Per-level flip tallies partition the global injected count.
            let injected = reg.counter("core.flips.injected").get();
            let per_level: u64 = (0..ladder.len())
                .map(|l| reg.counter(&format!("core.level.{l}.flips")).get())
                .sum();
            assert_eq!(per_level, injected, "exact={exact} {label}: flip partition");
            // Every BCH block decodes to exactly one outcome.
            let blocks = reg.counter("storage.bch.blocks").get();
            assert!(blocks > 0, "exact={exact} {label}: no blocks recorded");
            let outcomes = reg.counter("storage.bch.clean").get()
                + reg.counter("storage.bch.corrected").get()
                + reg.counter("storage.bch.uncorrectable").get();
            assert_eq!(outcomes, blocks, "exact={exact} {label}: block partition");
        }
        // Both worker counts recorded identical totals.
        for name in [
            "core.flips.injected",
            "storage.bch.blocks",
            "storage.bch.clean",
            "storage.bch.corrected",
            "storage.bch.uncorrectable",
        ] {
            assert_eq!(
                reg1.counter(name).get(),
                reg8.counter(name).get(),
                "exact={exact}: `{name}` differs across worker counts"
            );
        }
    }
}

/// FNV-1a over every frame payload of a loaded stream — a stable
/// fingerprint of the corruption pattern a given master seed produces.
fn stream_digest(stream: &vapp_codec::EncodedVideo) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for f in &stream.frames {
        for &b in &f.payload {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Seeded corruption is part of the repo's compatibility surface: the
/// same master seed must keep producing the same bytes across
/// refactors of the storage kernels (word-level BitBuf, table-driven
/// BCH), not just across thread counts. These digests were captured
/// from the scalar bit-at-a-time implementation; any change to them
/// means a seeded-RNG stream or the BCH decode behavior moved.
#[test]
fn seeded_store_load_digests_are_pinned() {
    let (_video, result, table) = fixture();
    let ladder = vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)];
    // Raw BER high enough that both arms corrupt (exact-BCH sees real
    // corrected and uncorrectable blocks, not an all-clean pass).
    for (exact, raw_ber, expect) in [
        (false, 1e-3, DIGEST_ANALYTIC),
        (true, 1e-3, DIGEST_EXACT),
        (true, 2e-2, DIGEST_EXACT_HIGH_BER),
    ] {
        let policy = StoragePolicy {
            ladder_levels: ladder.clone(),
            thresholds: vec![4.0, 64.0],
            substrate: mlc_pcm(raw_ber),
            exact_bch: exact,
        };
        let store = ApproxStore::new(policy);
        let mut rng = StdRng::seed_from_u64(7);
        let loaded = store.store_load(&result.stream, &table, &mut rng);
        assert_eq!(
            stream_digest(&loaded),
            expect,
            "exact={exact} raw_ber={raw_ber}: seeded output bytes moved"
        );
    }
}

// At 1e-3 the analytic and exact digests coincide: the BCH-protected
// levels come back fully corrected in both modes and the unprotected
// level-0 flips derive from the same sub-seed. The 2e-2 case drives the
// exact decoder through real corrected *and* uncorrectable blocks.
const DIGEST_ANALYTIC: u64 = 0x1a4a_ae54_9303_7118;
const DIGEST_EXACT: u64 = 0x1a4a_ae54_9303_7118;
const DIGEST_EXACT_HIGH_BER: u64 = 0x2957_d67f_842e_bab1;

/// The new substrates obey the same contract as MLC: store/load output
/// is a pure function of the master seed, byte-identical at any worker
/// count, and its digest is pinned so seeded burst/video corruption
/// stays part of the compatibility surface.
#[test]
fn substrate_store_load_is_thread_count_invariant_and_pinned() {
    let (_video, result, table) = fixture();
    let ladder = vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)];
    let cases: [(&str, Arc<dyn Substrate>, u64); 3] = [
        (
            "burst-rs",
            burst_erasure(BurstConfig {
                page_loss: 5e-3, // high enough that pages actually drop
                ..BurstConfig::default()
            }),
            DIGEST_BURST_RS,
        ),
        (
            "burst-ilbch",
            burst_erasure(BurstConfig {
                page_loss: 5e-3,
                interleaved_bch: true,
                ..BurstConfig::default()
            }),
            DIGEST_BURST_ILBCH,
        ),
        (
            "video",
            data_in_video(VideoChannelConfig::default()),
            DIGEST_VIDEO,
        ),
    ];
    for (name, substrate, expect) in cases {
        let policy = StoragePolicy {
            ladder_levels: ladder.clone(),
            thresholds: vec![4.0, 64.0],
            substrate,
            exact_bch: true,
        };
        let run = |threads: usize| {
            vapp_par::with_threads(threads, || {
                let store = ApproxStore::new(policy.clone());
                let mut rng = StdRng::seed_from_u64(7);
                store.store_load(&result.stream, &table, &mut rng)
            })
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq, par, "{name}: loaded stream differs across workers");
        assert_eq!(
            stream_digest(&seq),
            expect,
            "{name}: seeded output bytes moved (digest {:#018x})",
            stream_digest(&seq)
        );
    }
}

const DIGEST_BURST_RS: u64 = 0xa7e5_d8fe_f57f_6ac8;
// RS and interleaved-BCH coincide here: both fully correct the protected
// levels at this loss rate, so only the shared unprotected level-0
// damage (same t=0 path, same sub-seed) reaches the digest.
const DIGEST_BURST_ILBCH: u64 = 0xa7e5_d8fe_f57f_6ac8;
const DIGEST_VIDEO: u64 = 0xa672_7538_2e4e_80eb;

#[test]
fn loss_curve_is_thread_count_invariant() {
    let (video, result, _table) = fixture();
    let ranges = [0..result.stream.payload_bits()];
    let rates = [1e-4, 1e-3, 1e-2];
    let trials = Trials::new(4, 55);
    let seq = vapp_par::with_threads(1, || {
        measure_loss_curve(&result.stream, &video, &ranges, &rates, trials)
    });
    let par = vapp_par::with_threads(8, || {
        measure_loss_curve(&result.stream, &video, &ranges, &rates, trials)
    });
    for &r in &rates {
        assert_eq!(
            seq.loss_at(r).to_bits(),
            par.loss_at(r).to_bits(),
            "rate {r}: loss differs across worker counts"
        );
    }
}
