//! Tier-1 profiling determinism: the span-tree profile, the histogram
//! quantile sketches and the trace export must describe the *same*
//! execution at any worker count.
//!
//! The call-path profile aggregates spans by full path, with worker
//! threads inheriting the spawning thread's path as a prefix
//! (`vapp_obs::span::with_path_prefix` installed by `vapp-par`), so the
//! tree's shape — paths and call counts — is a pure function of the
//! workload, like every other output in this workspace. Durations are
//! wall-clock and excluded from the invariance checks. Histogram
//! sketches merge by bucket-wise addition, so the merged distribution
//! is bit-for-bit identical to the single-thread one.

use std::sync::Arc;

use vapp_codec::{EncodeResult, Encoder, EncoderConfig};
use vapp_obs::json::Value;
use vapp_obs::registry::with_registry;
use vapp_obs::{Registry, Snapshot};
use vapp_rand::rngs::StdRng;
use vapp_rand::{RngExt, SeedableRng};
use vapp_sim::Trials;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::pipeline::measure_loss_curve;
use videoapp::{
    mlc_pcm, ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PivotTable, StoragePolicy,
};

fn fixture() -> (vapp_media::Video, EncodeResult, PivotTable) {
    let video = ClipSpec::new(96, 64, 8, SceneKind::MovingBlocks)
        .seed(31)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 8,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[4.0, 64.0]);
    (video, result, table)
}

fn exact_policy() -> StoragePolicy {
    StoragePolicy {
        ladder_levels: vec![EcScheme::None, EcScheme::Bch(6), EcScheme::Bch(10)],
        thresholds: vec![4.0, 64.0],
        substrate: mlc_pcm(2e-2),
        exact_bch: true,
    }
}

/// The thread-count-invariant projection of a profile: (path, count).
fn profile_shape(snap: &Snapshot) -> Vec<(String, u64)> {
    snap.profile
        .iter()
        .map(|p| (p.path.clone(), p.count))
        .collect()
}

#[test]
fn store_load_profile_tree_is_thread_count_invariant() {
    let (_video, result, table) = fixture();
    let run = |threads: usize| {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            vapp_par::with_threads(threads, || {
                let store = ApproxStore::new(exact_policy());
                let mut rng = StdRng::seed_from_u64(7);
                let _ = store.store_load(&result.stream, &table, &mut rng);
            })
        });
        reg.snapshot()
    };
    let seq = run(1);
    let par = run(8);
    let shape = profile_shape(&seq);
    assert_eq!(
        shape,
        profile_shape(&par),
        "profile tree moved with threads"
    );
    // The tree is real: the load span roots a subtree containing the
    // per-level corruption and the batch decode underneath it.
    assert!(shape.iter().any(|(p, _)| p == "core.store.load"));
    assert!(
        shape.iter().any(|(p, c)| p.starts_with("core.store.load>")
            && p.ends_with(">storage.batch.decode")
            && *c > 0),
        "batch decode must nest under the load span: {shape:?}"
    );
    // No path may escape its caller: every non-root path's parent exists.
    for (path, _) in &shape {
        if let Some(idx) = path.rfind('>') {
            let parent = &path[..idx];
            assert!(
                shape.iter().any(|(p, _)| p == parent),
                "orphan path `{path}` (no `{parent}`)"
            );
        }
    }
}

#[test]
fn store_load_sketches_match_bit_for_bit_across_thread_counts() {
    let (_video, result, table) = fixture();
    let run = |threads: usize| {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            vapp_par::with_threads(threads, || {
                let store = ApproxStore::new(exact_policy());
                let mut rng = StdRng::seed_from_u64(7);
                let _ = store.store_load(&result.stream, &table, &mut rng);
            })
        });
        reg.snapshot()
    };
    let seq = run(1);
    let par = run(8);
    assert!(
        seq.histogram("storage.batch.dirty_lanes").is_some(),
        "exact store/load records the dirty-lane distribution"
    );
    for h1 in &seq.histograms {
        let h8 = par.histogram(&h1.name).expect("histogram set matches");
        // The 8-way sketch is a merge of per-worker contributions;
        // merging is bucket-wise addition, so it must equal the
        // single-thread sketch exactly — including every quantile.
        assert_eq!(
            h1.sketch, h8.sketch,
            "`{}` sketch moved with threads",
            h1.name
        );
        assert_eq!(
            h1.sketch.snapshot_quantiles(),
            h8.sketch.snapshot_quantiles(),
            "`{}` quantiles moved with threads",
            h1.name
        );
    }
    assert_eq!(seq.histograms.len(), par.histograms.len());
}

#[test]
fn trials_profile_is_thread_count_invariant() {
    let trials = Trials::new(13, 99);
    let run = |threads: usize| {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            vapp_par::with_threads(threads, || {
                let _region = vapp_obs::span!("test.trials.region");
                trials.run(|_, rng| {
                    let _unit = vapp_obs::span!("test.trials.unit");
                    rng.random::<u64>()
                })
            })
        });
        reg.snapshot()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(profile_shape(&seq), profile_shape(&par));
    // Trials::run opens its own span between the region and the units.
    let unit = seq
        .profile_path("test.trials.region>sim.trials.run>test.trials.unit")
        .expect("unit nests under the region at any thread count");
    assert_eq!(unit.count, 13);
}

#[test]
fn loss_curve_profile_shape_is_thread_count_invariant() {
    let (video, result, _table) = fixture();
    let ranges = [0..result.stream.payload_bits()];
    let rates = [1e-4, 1e-3];
    let trials = Trials::new(4, 55);
    let run = |threads: usize| {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            vapp_par::with_threads(threads, || {
                let _ = measure_loss_curve(&result.stream, &video, &ranges, &rates, trials);
            })
        });
        reg.snapshot()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(profile_shape(&seq), profile_shape(&par));
    assert!(seq.profile_path("core.loss.curve").is_some());
}

#[test]
fn worker_utilization_reconciles_with_the_unit_count() {
    let reg = Arc::new(Registry::new());
    let units = 37u64;
    with_registry(reg.clone(), || {
        vapp_par::with_threads(8, || {
            vapp_par::par_map((0..units).collect::<Vec<u64>>(), |_, x| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                x
            })
        });
    });
    let snap = reg.snapshot();
    let tasks: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("par.worker.") && n.ends_with(".tasks"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(tasks, units, "every unit claimed by exactly one worker");
    let busy: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("par.worker.") && n.ends_with(".busy_ns"))
        .map(|(_, v)| *v)
        .sum();
    assert!(
        busy >= units * 100_000,
        "busy time must cover the slept time: {busy} ns"
    );
    // The single-thread rerun is utilization-silent (inline path).
    let reg1 = Arc::new(Registry::new());
    with_registry(reg1.clone(), || {
        vapp_par::with_threads(1, || {
            vapp_par::par_map((0..units).collect::<Vec<u64>>(), |_, x| x)
        });
    });
    assert!(!reg1
        .snapshot()
        .counters
        .iter()
        .any(|(n, _)| n.starts_with("par.worker.")));
}

#[test]
fn sketch_quantiles_track_exact_order_statistics_within_two_percent() {
    vapp_check::check("sketch_quantile_accuracy", 60, |rng| {
        let n = 50 + (rng.random::<u64>() % 2000) as usize;
        let mut values: Vec<u64> = (0..n)
            .map(|_| 1 + rng.random::<u64>() % 1_000_000)
            .collect();
        let mut sketch = vapp_obs::Sketch::new();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * (n as f64 - 1.0)).floor() as usize).min(n - 1);
            let exact = values[rank] as f64;
            let est = sketch.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 0.02,
                "q={q}: estimate {est} vs exact {exact} ({:.2}% off, n={n})",
                rel * 100.0
            );
        }
    });
}

#[test]
fn pipeline_trace_export_is_structurally_valid() {
    let (_video, result, table) = fixture();
    let reg = Arc::new(Registry::new());
    let dir = std::env::temp_dir().join("vapp-profiling-trace-test");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("trace.json");
    with_registry(reg.clone(), || {
        vapp_par::with_threads(4, || {
            let store = ApproxStore::new(exact_policy());
            let mut rng = StdRng::seed_from_u64(7);
            let _ = store.store_load(&result.stream, &table, &mut rng);
        });
        vapp_obs::write_trace(&path, "profiling_test").expect("writable temp dir");
    });
    let text = std::fs::read_to_string(&path).expect("trace written");
    let doc = Value::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert!(
        !complete.is_empty(),
        "pipeline spans become complete events"
    );
    for e in &complete {
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("ts").and_then(Value::as_f64).unwrap() >= 0.0);
        assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
        assert!(e.get("tid").and_then(Value::as_u64).unwrap() >= 1);
    }
    assert!(
        complete
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("core.store.load")),
        "the load span appears on the trace"
    );
    // Thread metadata covers every tid that appears on an event.
    let named_tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("tid").and_then(Value::as_u64))
        .collect();
    for e in &complete {
        let tid = e.get("tid").and_then(Value::as_u64).unwrap();
        assert!(
            named_tids.contains(&tid),
            "tid {tid} lacks thread_name metadata"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_schema_gate_holds_for_pipeline_output() {
    let (_video, result, table) = fixture();
    let reg = Arc::new(Registry::new());
    with_registry(reg.clone(), || {
        let store = ApproxStore::new(exact_policy());
        let mut rng = StdRng::seed_from_u64(7);
        let _ = store.store_load(&result.stream, &table, &mut rng);
    });
    let json = reg.snapshot().to_json("gate");
    let (_, parsed) = Snapshot::from_json(&json).expect("own output parses");
    assert_eq!(profile_shape(&parsed), profile_shape(&reg.snapshot()));
    let future = json.replacen(
        "\"schema_version\": \"2.0\"",
        "\"schema_version\": \"9.1\"",
        1,
    );
    assert!(
        Snapshot::from_json(&future).is_err(),
        "future majors must be rejected, not misread"
    );
}
