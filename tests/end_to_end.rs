//! End-to-end integration: encode → analyse → assign → store → corrupt →
//! correct → decode → measure, across crates.

use vapp_codec::{decode, Encoder, EncoderConfig};
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    mlc_pcm, ApproxStore, Assignment, DependencyGraph, EcScheme, ImportanceMap, LossCurve,
    PivotTable, StoragePolicy, QUALITY_BUDGET_DB,
};

fn encode_clip() -> (vapp_media::Video, vapp_codec::EncodeResult) {
    let video = ClipSpec::new(96, 64, 18, SceneKind::MovingBlocks)
        .seed(314)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 9,
        bframes: 2,
        ..EncoderConfig::default()
    })
    .encode(&video);
    (video, result)
}

#[test]
fn full_pipeline_stays_within_quality_budget() {
    let (video, result) = encode_clip();
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));

    // A conservative hand-rolled policy: BCH-6 for the unimportant tail,
    // stronger codes above.
    let thresholds = vec![16.0, 256.0];
    let table = PivotTable::build(&result.analysis, &importance, &thresholds);
    let store = ApproxStore::new(StoragePolicy {
        ladder_levels: vec![EcScheme::Bch(6), EcScheme::Bch(8), EcScheme::Bch(10)],
        thresholds,
        substrate: mlc_pcm(1e-3),
        exact_bch: false,
    });

    let base = video_psnr(&video, &result.reconstruction);
    let mut worst = 0.0f64;
    for t in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(t);
        let loaded = store.store_load(&result.stream, &table, &mut rng);
        let decoded = decode(&loaded);
        worst = worst.min(video_psnr(&video, &decoded) - base);
    }
    assert!(
        worst >= -QUALITY_BUDGET_DB,
        "quality change {worst} dB exceeds the 0.3 dB budget"
    );

    let report = store.report(&result.stream, &table, video.total_pixels() as u64);
    assert!(
        report.density_vs_slc() > 2.0,
        "density {}",
        report.density_vs_slc()
    );
    assert!(report.ec_overhead_reduction() > 0.3);
}

#[test]
fn assignment_driven_policy_round_trips() {
    let (video, result) = encode_clip();
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let classes = videoapp::importance_classes(&result.analysis, &importance);

    // Synthetic-but-shaped curves (cheap stand-in for measured Fig. 10
    // data): class i tolerates rates up to ~10^-(i/2 + 2).
    let class_meta: Vec<(u32, u64)> = classes.iter().map(|c| (c.exp, c.bits)).collect();
    let curves: Vec<LossCurve> = classes
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let knee = 10f64.powf(-(0.5 * i as f64 + 2.0));
            LossCurve::new(vec![
                (knee * 1e-2, -0.01),
                (knee, -0.2),
                (knee * 100.0, -6.0),
            ])
        })
        .collect();
    let assignment = Assignment::compute(&class_meta, &curves, QUALITY_BUDGET_DB, 1e-3);
    assert_eq!(assignment.header_scheme, EcScheme::PRECISE);

    let policy = StoragePolicy::from_assignment_mlc(&assignment, 1e-3);
    let table = PivotTable::build(&result.analysis, &importance, &policy.thresholds);
    let store = ApproxStore::new(policy);
    let mut rng = StdRng::seed_from_u64(99);
    let loaded = store.store_load(&result.stream, &table, &mut rng);
    let decoded = decode(&loaded);
    assert_eq!(decoded.len(), video.len());

    // Accounting is self-consistent.
    let report = store.report(&result.stream, &table, video.total_pixels() as u64);
    let level_total: u64 = report.level_bits.iter().sum();
    assert_eq!(level_total, result.stream.payload_bits());
    assert!(report.total_cells_mlc <= report.cells_uniform + report.pivot_bits as f64);
}

#[test]
fn streaming_importance_allows_gop_local_processing() {
    let (_, result) = encode_clip();
    let graph = DependencyGraph::from_analysis(&result.analysis);
    let global = ImportanceMap::compute(&graph);
    let streaming = ImportanceMap::compute_streaming(&graph);
    for (a, b) in global.values().iter().zip(streaming.values()) {
        assert!((a - b).abs() < 1e-6);
    }
}

/// Tier-2 soak: the quality-budget invariant over a much larger Monte
/// Carlo sample, with the exact (polynomial) BCH decoder engaged.
///
/// Run with `cargo test -- --ignored` (CI tier-2 job).
#[test]
#[ignore = "tier-2 soak: ~minutes of Monte Carlo; run via `cargo test -- --ignored`"]
fn soak_quality_budget_many_trials_exact_bch() {
    let (video, result) = encode_clip();
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let thresholds = vec![16.0, 256.0];
    let table = PivotTable::build(&result.analysis, &importance, &thresholds);
    let store = ApproxStore::new(StoragePolicy {
        ladder_levels: vec![EcScheme::Bch(6), EcScheme::Bch(8), EcScheme::Bch(10)],
        thresholds,
        substrate: mlc_pcm(1e-3),
        exact_bch: true,
    });

    let base = video_psnr(&video, &result.reconstruction);
    let mut worst = 0.0f64;
    for t in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + t);
        let loaded = store.store_load(&result.stream, &table, &mut rng);
        let decoded = decode(&loaded);
        worst = worst.min(video_psnr(&video, &decoded) - base);
    }
    assert!(
        worst >= -QUALITY_BUDGET_DB,
        "quality change {worst} dB exceeds the 0.3 dB budget over 40 trials"
    );
}

#[test]
fn exact_bch_pipeline_smoke() {
    let (video, result) = encode_clip();
    let importance = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &importance, &[32.0]);
    let mut policy = StoragePolicy {
        ladder_levels: vec![EcScheme::Bch(6), EcScheme::Bch(6)],
        thresholds: vec![32.0],
        substrate: mlc_pcm(1e-3),
        exact_bch: true,
    };
    policy.exact_bch = true;
    let store = ApproxStore::new(policy);
    let mut rng = StdRng::seed_from_u64(5);
    let loaded = store.store_load(&result.stream, &table, &mut rng);
    // Raw 1e-3 on BCH-6: block failure ~2e-6 — overwhelmingly clean.
    assert_eq!(loaded, result.stream);
    assert_eq!(decode(&loaded), result.reconstruction);
    let _ = video;
}
