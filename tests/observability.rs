//! Observability integration: the `vapp-obs` counters must reconcile with
//! the pipeline's own accounting (`PipelineReport`), and the snapshot JSON
//! must round-trip through the crate's own parser.

use std::sync::Arc;
use vapp_codec::{Encoder, EncoderConfig};
use vapp_obs::json::Value;
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_storage::density;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    mlc_pcm, ApproxStore, DependencyGraph, EcScheme, ImportanceMap, PipelineReport, PivotTable,
    StoragePolicy,
};

const BCH_BLOCK_BITS: u64 = 512;

fn setup() -> (vapp_codec::EncodedVideo, PivotTable, u64) {
    let video = ClipSpec::new(96, 64, 8, SceneKind::MovingBlocks)
        .seed(23)
        .generate();
    let result = Encoder::new(EncoderConfig {
        keyint: 4,
        bframes: 1,
        ..EncoderConfig::default()
    })
    .encode(&video);
    let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
    let table = PivotTable::build(&result.analysis, &imp, &[8.0, 64.0]);
    (result.stream, table, video.total_pixels() as u64)
}

fn policy() -> StoragePolicy {
    StoragePolicy {
        ladder_levels: vec![EcScheme::Bch(6), EcScheme::Bch(9), EcScheme::Bch(16)],
        thresholds: vec![8.0, 64.0],
        substrate: mlc_pcm(1e-3),
        exact_bch: false,
    }
}

#[test]
fn report_level_bits_sum_to_payload() {
    let (stream, table, pixels) = setup();
    let store = ApproxStore::new(policy());
    let report = store.report(&stream, &table, pixels);
    assert_eq!(
        report.level_bits.iter().sum::<u64>(),
        report.payload_bits,
        "per-level bits must partition the payload"
    );
    assert_eq!(report.payload_bits, stream.payload_bits());
}

#[test]
fn report_density_matches_hand_computation() {
    let (stream, table, pixels) = setup();
    let store = ApproxStore::new(policy());
    let report = store.report(&stream, &table, pixels);

    // Bit-weighted average overhead, recomputed from the report's own
    // per-level breakdown.
    let weighted: f64 = report
        .level_bits
        .iter()
        .zip(&report.level_schemes)
        .map(|(&b, s)| s.overhead() * b as f64)
        .sum::<f64>()
        / report.payload_bits as f64;
    assert!((report.avg_payload_overhead - weighted).abs() < 1e-12);

    // Total MLC cells: per-level payload cells plus precise metadata.
    let payload_cells: f64 = report
        .level_bits
        .iter()
        .zip(&report.level_schemes)
        .map(|(&b, s)| density::cells_for(b, s.overhead(), 3))
        .sum();
    let meta_cells = density::cells_for(
        report.header_bits + report.pivot_bits,
        EcScheme::PRECISE.overhead(),
        3,
    );
    assert!((report.total_cells_mlc - (payload_cells + meta_cells)).abs() < 1e-9);

    // Derived ratios agree with the density helpers.
    let cpp = density::cells_per_pixel(report.total_cells_mlc, pixels);
    assert!((report.cells_per_pixel() - cpp).abs() < 1e-12);
    let rel = density::relative_density(report.total_cells_mlc, report.cells_slc);
    assert!((report.density_vs_slc() - rel).abs() < 1e-12);
}

#[test]
fn obs_counters_reconcile_with_report_after_store_load() {
    let (stream, table, pixels) = setup();
    let store = ApproxStore::new(policy());
    let report = store.report(&stream, &table, pixels);

    let reg = Arc::new(Registry::new());
    with_registry(reg.clone(), || {
        let mut rng = StdRng::seed_from_u64(99);
        let _ = store.store_load(&stream, &table, &mut rng);
    });
    let snap = reg.snapshot();

    // Per-level stored bits match the report's level accounting and sum
    // to the payload.
    let mut stored = 0u64;
    for (level, &bits) in report.level_bits.iter().enumerate() {
        let c = snap.counter(&format!("core.level.{level}.stored_bits"));
        assert_eq!(c, bits, "level {level} stored bits");
        stored += c;
    }
    assert_eq!(stored, report.payload_bits);

    // Block outcome tallies partition the block population.
    let blocks = snap.counter("storage.bch.blocks");
    let expected_blocks: u64 = report
        .level_bits
        .iter()
        .filter(|&&b| b > 0)
        .map(|&b| b.div_ceil(BCH_BLOCK_BITS))
        .sum();
    assert_eq!(blocks, expected_blocks);
    assert_eq!(
        snap.counter("storage.bch.clean")
            + snap.counter("storage.bch.corrected")
            + snap.counter("storage.bch.uncorrectable"),
        blocks
    );

    // Total injected flips are exactly the per-level sum.
    let per_level_flips: u64 = (0..report.level_bits.len())
        .map(|l| snap.counter(&format!("core.level.{l}.flips")))
        .sum();
    assert_eq!(snap.counter("core.flips.injected"), per_level_flips);

    // The store/load round trip is covered by spans.
    let load = snap.span("core.store.load").expect("store.load span");
    assert_eq!(load.count, 1);
    assert!(snap.span("core.streams.split").is_some());
    assert!(snap.span("core.streams.merge").is_some());
}

#[test]
fn exact_and_analytic_modes_tally_the_same_block_count() {
    let (stream, table, _) = setup();
    let mut counts = Vec::new();
    for exact in [false, true] {
        let mut p = policy();
        p.exact_bch = exact;
        let store = ApproxStore::new(p);
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            let mut rng = StdRng::seed_from_u64(7);
            let _ = store.store_load(&stream, &table, &mut rng);
        });
        let snap = reg.snapshot();
        counts.push(snap.counter("storage.bch.blocks"));
        assert_eq!(
            snap.counter("storage.bch.clean")
                + snap.counter("storage.bch.corrected")
                + snap.counter("storage.bch.uncorrectable"),
            snap.counter("storage.bch.blocks"),
            "exact={exact}: outcomes must partition blocks"
        );
    }
    assert_eq!(counts[0], counts[1]);
}

#[test]
fn snapshot_json_parses_and_carries_the_counters() {
    let (stream, table, _) = setup();
    let store = ApproxStore::new(policy());
    let reg = Arc::new(Registry::new());
    with_registry(reg.clone(), || {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = store.store_load(&stream, &table, &mut rng);
    });
    let snap = reg.snapshot();
    let json = snap.to_json("test_run");
    let v = Value::parse(&json).expect("snapshot JSON must parse");
    assert_eq!(v.get("run").and_then(Value::as_str), Some("test_run"));
    assert_eq!(
        v.get("schema_version").and_then(Value::as_str),
        Some(vapp_obs::SCHEMA_VERSION)
    );
    let counters = v
        .get("counters")
        .and_then(Value::as_obj)
        .expect("counters object");
    assert_eq!(
        counters
            .get("core.level.0.stored_bits")
            .and_then(Value::as_u64),
        Some(snap.counter("core.level.0.stored_bits"))
    );
    let spans = v.get("spans").and_then(Value::as_obj).expect("spans");
    assert!(spans.contains_key("core.store.load"));
    // Every histogram carries the full quantile block. (The analytic
    // policy may record none — the exact-BCH runs in tests/profiling.rs
    // pin histogram presence.)
    let histograms = v
        .get("histograms")
        .and_then(Value::as_obj)
        .expect("histograms object");
    for (name, h) in histograms {
        let q = h.get("quantiles").expect("quantiles present");
        for p in ["p50", "p90", "p95", "p99", "p999"] {
            assert!(q.get(p).and_then(Value::as_f64).is_some(), "{name}: {p}");
        }
    }
    // The profile section mirrors the call tree: the load span is a
    // root path and the per-level corruption nests under it.
    let profile = v
        .get("profile")
        .and_then(Value::as_obj)
        .expect("profile object");
    assert!(profile.contains_key("core.store.load"));
    assert!(profile
        .keys()
        .any(|p| p.starts_with("core.store.load>") && p.ends_with("core.level.corrupt")));
    // And the whole document round-trips through the typed parser.
    let (run, parsed) = vapp_obs::Snapshot::from_json(&json).expect("from_json");
    assert_eq!(run, "test_run");
    assert_eq!(parsed.counters, snap.counters);
    assert_eq!(parsed.profile, snap.profile);
}

#[test]
fn report_json_parses_and_matches_fields() {
    let (stream, table, pixels) = setup();
    let store = ApproxStore::new(policy());
    let report: PipelineReport = store.report(&stream, &table, pixels);
    let v = Value::parse(&report.to_json()).expect("report JSON must parse");
    assert_eq!(
        v.get("payload_bits").and_then(Value::as_u64),
        Some(report.payload_bits)
    );
    let level_bits = v
        .get("level_bits")
        .and_then(Value::as_arr)
        .expect("level_bits array");
    assert_eq!(level_bits.len(), report.level_bits.len());
    let schemes = v
        .get("level_schemes")
        .and_then(Value::as_arr)
        .expect("level_schemes array");
    assert_eq!(schemes[0].as_str(), Some("Bch(6)"));
    let d = v
        .get("density_vs_slc")
        .and_then(Value::as_f64)
        .expect("density");
    assert!((d - report.density_vs_slc()).abs() < 1e-9);
}
