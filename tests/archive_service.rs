//! Tier-1 end-to-end proof of the archive service: a smoke-scale fleet
//! run is a pure function of the master seed — every stored byte, every
//! served byte, every queue rejection and cache eviction — byte-identical
//! at 1 and 8 workers, pinned by digest.
//!
//! The digest folds the full completion stream (ids, payload bytes,
//! hit/degraded flags) plus the run's stable counters; wall-clock
//! latencies are recorded into `vapp-obs` sketches but deliberately kept
//! out of the digest. If an intentional change to the workload, the
//! scheduler, the cache policy, or the substrate moves the pinned value,
//! re-capture it with:
//!
//! ```sh
//! cargo test --test archive_service -- --nocapture
//! ```

use std::sync::Arc;

use vapp_archive::{run_fleet, FleetConfig, FleetOutcome};
use vapp_obs::registry::with_registry;
use vapp_obs::Registry;

const MASTER_SEED: u64 = 0xA2C4_17E0;

/// Captured from the smoke fleet at seed `MASTER_SEED`; identical at any
/// thread count.
const PINNED_SMOKE_DIGEST: u64 = 0x9A48_BA88_B7BA_8D8C;

fn smoke_run(threads: usize, reg: Arc<Registry>) -> FleetOutcome {
    with_registry(reg, || {
        vapp_par::with_threads(threads, || run_fleet(&FleetConfig::smoke(), MASTER_SEED))
    })
}

#[test]
fn smoke_fleet_is_thread_count_invariant_and_pinned() {
    let seq = smoke_run(1, Arc::new(Registry::new()));
    let par = smoke_run(8, Arc::new(Registry::new()));

    assert_eq!(
        seq.digest, par.digest,
        "fleet digest moved across thread counts"
    );
    // Stable counters reconcile exactly (atomics commute; scheduling
    // order is fixed by the driver, not the pool).
    assert_eq!(seq.submitted, par.submitted);
    assert_eq!(seq.rejected, par.rejected);
    assert_eq!(seq.completed, par.completed);
    assert_eq!(seq.reads_served, par.reads_served);
    assert_eq!(seq.cache_hits, par.cache_hits);
    assert_eq!(seq.cache_misses, par.cache_misses);
    assert_eq!(seq.cache_evictions, par.cache_evictions);
    assert_eq!(seq.degraded, par.degraded);
    assert_eq!(seq.ingested, par.ingested);
    assert_eq!(seq.deleted, par.deleted);
    assert_eq!(seq.compaction_runs, par.compaction_runs);

    println!("smoke fleet digest: {:#018x}", seq.digest);
    assert_eq!(
        seq.digest, PINNED_SMOKE_DIGEST,
        "seeded fleet output moved (digest {:#018x}) — if intentional, re-pin",
        seq.digest
    );

    // The workload actually exercised the service end to end.
    assert_eq!(seq.submitted, seq.completed + seq.rejected);
    assert!(seq.rejected > 0, "smoke queues are sized to backpressure");
    assert!(seq.cache_hits > 0, "Zipf head must hit the cache");
    assert!(seq.cache_evictions > 0, "cache is sized to evict");
    assert!(seq.ingested > 0 && seq.deleted > 0);
    assert!(seq.compaction_runs > 0, "smoke must exercise compaction");
    assert!(seq.degraded > 0, "bronze t=0 streams must take real damage");
}

#[test]
fn smoke_fleet_reports_latency_sketches_and_throughput() {
    let reg = Arc::new(Registry::new());
    let outcome = smoke_run(8, Arc::clone(&reg));
    assert!(outcome.completed > 0, "nonzero throughput");

    let snap = reg.snapshot();
    for class in ["ingest", "read_hit", "read_miss", "delete"] {
        let h = snap
            .histogram(&format!("archive.op.{class}.ns"))
            .unwrap_or_else(|| panic!("missing latency sketch for {class}"));
        assert!(h.count > 0, "{class}: empty latency sketch");
        assert!(
            h.quantile(0.99) >= h.quantile(0.50),
            "{class}: quantiles out of order"
        );
    }
    let table = vapp_archive::report::render(&outcome, &snap);
    assert!(table.contains("req/s") && table.contains("p999"), "{table}");
}
