//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo `vapp-check` harness (seeded case generation;
//! failures report a `VAPP_CHECK_SEED` that replays the exact case).

use vapp_check::{check, gen, RngExt};
use vapp_codec::arith::{ArithDecoder, ArithEncoder, BinContext};
use vapp_codec::bitstream::{BitReader, BitWriter};
use vapp_codec::expgolomb;
use vapp_crypto::CipherMode;
use vapp_storage::bch::{Bch, DecodeOutcome, DATA_BITS};
use vapp_storage::bits::BitBuf;

#[test]
fn bitstream_roundtrip() {
    check("bitstream_roundtrip", 64, |rng| {
        let values = gen::vec_of(rng, 0..100, |r| {
            (r.random::<u32>(), r.random_range(1..=32u32))
        });
        let mut w = BitWriter::new();
        for &(v, bits) in &values {
            w.put_bits(v & ((1u64 << bits) - 1) as u32, bits);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, bits) in &values {
            assert_eq!(r.get_bits(bits), v & ((1u64 << bits) - 1) as u32);
        }
    });
}

#[test]
fn expgolomb_roundtrip() {
    check("expgolomb_roundtrip", 64, |rng| {
        let values = gen::vec_of(rng, 0..200, |r| r.random::<i32>());
        let mut w = BitWriter::new();
        for &v in &values {
            expgolomb::write_se(&mut w, v.clamp(-1_000_000, 1_000_000));
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(expgolomb::read_se(&mut r), v.clamp(-1_000_000, 1_000_000));
        }
    });
}

#[test]
fn arith_coder_roundtrip() {
    check("arith_coder_roundtrip", 64, |rng| {
        let bins = gen::vec_of(rng, 0..2000, |r| r.random::<bool>());
        let contexts = rng.random_range(1..8usize);
        let mut enc = ArithEncoder::new();
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bins.iter().enumerate() {
            enc.encode(&mut ctxs[i % contexts], b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bins.iter().enumerate() {
            assert_eq!(dec.decode(&mut ctxs[i % contexts]), b, "bin {}", i);
        }
    });
}

#[test]
fn bch_corrects_any_t_errors() {
    check("bch_corrects_any_t_errors", 64, |rng| {
        let seed: u64 = rng.random();
        let n_flips = rng.random_range(0..=6usize);
        let flips = gen::distinct(rng, 0..572, n_flips);
        let code = Bch::new(6);
        let mut data = BitBuf::zeroed(DATA_BITS);
        let mut s = seed | 1;
        for i in 0..DATA_BITS {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.set(i, (s >> 62) & 1 == 1);
        }
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        for &f in &flips {
            cw.flip(f);
        }
        let outcome = code.decode(&mut cw);
        if flips.is_empty() {
            assert_eq!(outcome, DecodeOutcome::Clean);
        } else {
            assert_eq!(outcome, DecodeOutcome::Corrected(flips.len()));
        }
        assert_eq!(cw, clean);
    });
}

#[test]
fn cipher_modes_roundtrip() {
    check("cipher_modes_roundtrip", 64, |rng| {
        let data = gen::bytes(rng, 1..300);
        let key: [u8; 16] = rng.random();
        let iv: [u8; 16] = rng.random();
        for mode in CipherMode::ALL {
            let ct = mode.encrypt(&key, &iv, &data);
            let pt = mode.decrypt(&key, &iv, &ct);
            assert_eq!(&pt[..data.len()], &data[..], "{:?}", mode);
        }
    });
}

#[test]
fn stream_cipher_flip_transparency() {
    check("stream_cipher_flip_transparency", 64, |rng| {
        let data = gen::bytes(rng, 16..200);
        let key: [u8; 16] = rng.random();
        let iv: [u8; 16] = rng.random();
        for mode in [CipherMode::Ofb, CipherMode::Ctr] {
            let mut ct = mode.encrypt(&key, &iv, &data);
            let bit = gen::index(rng, ct.len() * 8);
            ct[bit / 8] ^= 1 << (bit % 8);
            let pt = mode.decrypt(&key, &iv, &ct);
            let mut expect = data.clone();
            expect[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(&pt[..], &expect[..], "{:?}", mode);
        }
    });
}

// Codec-level properties are more expensive; fewer cases.

#[test]
fn codec_roundtrip_and_importance_invariants() {
    check("codec_roundtrip_and_importance_invariants", 8, |rng| {
        use vapp_codec::{decode, Encoder, EncoderConfig};
        use vapp_workloads::{ClipSpec, SceneKind};
        use videoapp::{DependencyGraph, ImportanceMap};

        let seed = rng.random_range(0..1000u64);
        let crf = rng.random_range(18..34u8);
        let bframes = rng.random_range(0..3u8);
        let keyint = rng.random_range(3..9u16);

        let video = ClipSpec::new(48, 32, 8, SceneKind::MovingBlocks)
            .seed(seed)
            .generate();
        let result = Encoder::new(EncoderConfig {
            crf,
            bframes,
            keyint,
            ..EncoderConfig::default()
        })
        .encode(&video);

        // Decoder matches the encoder's closed loop exactly.
        assert_eq!(decode(&result.stream), result.reconstruction.clone());

        // Importance invariants: >= 1, strictly decreasing in scan order.
        let graph = DependencyGraph::from_analysis(&result.analysis);
        let imp = ImportanceMap::compute(&graph);
        assert!(imp.values().iter().all(|&v| v >= 1.0 - 1e-12));
        let per = graph.mbs_per_frame();
        for f in 0..graph.frames() {
            for mb in 0..per - 1 {
                assert!(imp.get(f, mb) > imp.get(f, mb + 1));
            }
        }
        // Incoming compensation weights are 0 or 1.
        for (node, &w) in graph.incoming_comp_weights().iter().enumerate() {
            assert!(
                w.abs() < 1e-9 || (w - 1.0).abs() < 1e-6,
                "node {} weight {}",
                node,
                w
            );
        }
    });
}

#[test]
fn split_merge_identity_random_thresholds() {
    check("split_merge_identity_random_thresholds", 8, |rng| {
        use vapp_codec::{Encoder, EncoderConfig};
        use vapp_workloads::{ClipSpec, SceneKind};
        use videoapp::{merge_streams, split_streams, DependencyGraph, ImportanceMap, PivotTable};

        let seed = rng.random_range(0..100u64);
        let t1 = rng.random_range(2.0..16.0f64);
        let t2 = rng.random_range(16.0..256.0f64);

        let video = ClipSpec::new(48, 32, 6, SceneKind::Panning)
            .seed(seed)
            .generate();
        let result = Encoder::new(EncoderConfig {
            keyint: 3,
            bframes: 1,
            ..EncoderConfig::default()
        })
        .encode(&video);
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
        let table = PivotTable::build(&result.analysis, &imp, &[t1, t2]);
        let streams = split_streams(&result.stream, &table);
        assert_eq!(streams.total_bits(), result.stream.payload_bits());
        let merged = merge_streams(&result.stream, &table, &streams);
        assert_eq!(merged, result.stream);
    });
}
