//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use vapp_codec::arith::{ArithDecoder, ArithEncoder, BinContext};
use vapp_codec::bitstream::{BitReader, BitWriter};
use vapp_codec::expgolomb;
use vapp_crypto::CipherMode;
use vapp_storage::bch::{Bch, DecodeOutcome, DATA_BITS};
use vapp_storage::bits::BitBuf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitstream_roundtrip(values in prop::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..100)) {
        let mut w = BitWriter::new();
        for &(v, bits) in &values {
            w.put_bits(v & ((1u64 << bits) - 1) as u32, bits);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, bits) in &values {
            prop_assert_eq!(r.get_bits(bits), v & ((1u64 << bits) - 1) as u32);
        }
    }

    #[test]
    fn expgolomb_roundtrip(values in prop::collection::vec(any::<i32>(), 0..200)) {
        let mut w = BitWriter::new();
        for &v in &values {
            expgolomb::write_se(&mut w, v.clamp(-1_000_000, 1_000_000));
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(expgolomb::read_se(&mut r), v.clamp(-1_000_000, 1_000_000));
        }
    }

    #[test]
    fn arith_coder_roundtrip(
        bins in prop::collection::vec(any::<bool>(), 0..2000),
        contexts in 1usize..8,
    ) {
        let mut enc = ArithEncoder::new();
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bins.iter().enumerate() {
            enc.encode(&mut ctxs[i % contexts], b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctxs = vec![BinContext::new(); contexts];
        for (i, &b) in bins.iter().enumerate() {
            prop_assert_eq!(dec.decode(&mut ctxs[i % contexts]), b, "bin {}", i);
        }
    }

    #[test]
    fn bch_corrects_any_t_errors(
        seed in any::<u64>(),
        flips in prop::collection::btree_set(0usize..572, 0..=6),
    ) {
        let code = Bch::new(6);
        let mut data = BitBuf::zeroed(DATA_BITS);
        let mut s = seed | 1;
        for i in 0..DATA_BITS {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.set(i, (s >> 62) & 1 == 1);
        }
        let clean = code.encode(&data);
        let mut cw = clean.clone();
        for &f in &flips {
            cw.flip(f);
        }
        let outcome = code.decode(&mut cw);
        if flips.is_empty() {
            prop_assert_eq!(outcome, DecodeOutcome::Clean);
        } else {
            prop_assert_eq!(outcome, DecodeOutcome::Corrected(flips.len()));
        }
        prop_assert_eq!(cw, clean);
    }

    #[test]
    fn cipher_modes_roundtrip(
        data in prop::collection::vec(any::<u8>(), 1..300),
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
    ) {
        for mode in CipherMode::ALL {
            let ct = mode.encrypt(&key, &iv, &data);
            let pt = mode.decrypt(&key, &iv, &ct);
            prop_assert_eq!(&pt[..data.len()], &data[..], "{:?}", mode);
        }
    }

    #[test]
    fn stream_cipher_flip_transparency(
        data in prop::collection::vec(any::<u8>(), 16..200),
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        flip in any::<prop::sample::Index>(),
    ) {
        for mode in [CipherMode::Ofb, CipherMode::Ctr] {
            let mut ct = mode.encrypt(&key, &iv, &data);
            let bit = flip.index(ct.len() * 8);
            ct[bit / 8] ^= 1 << (bit % 8);
            let pt = mode.decrypt(&key, &iv, &ct);
            let mut expect = data.clone();
            expect[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(&pt[..], &expect[..], "{:?}", mode);
        }
    }
}

// Codec-level properties are more expensive; fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn codec_roundtrip_and_importance_invariants(
        seed in 0u64..1000,
        crf in 18u8..34,
        bframes in 0u8..3,
        keyint in 3u16..9,
    ) {
        use vapp_codec::{decode, Encoder, EncoderConfig};
        use vapp_workloads::{ClipSpec, SceneKind};
        use videoapp::{DependencyGraph, ImportanceMap};

        let video = ClipSpec::new(48, 32, 8, SceneKind::MovingBlocks)
            .seed(seed)
            .generate();
        let result = Encoder::new(EncoderConfig {
            crf,
            bframes,
            keyint,
            ..EncoderConfig::default()
        })
        .encode(&video);

        // Decoder matches the encoder's closed loop exactly.
        prop_assert_eq!(decode(&result.stream), result.reconstruction.clone());

        // Importance invariants: >= 1, strictly decreasing in scan order.
        let graph = DependencyGraph::from_analysis(&result.analysis);
        let imp = ImportanceMap::compute(&graph);
        prop_assert!(imp.values().iter().all(|&v| v >= 1.0 - 1e-12));
        let per = graph.mbs_per_frame();
        for f in 0..graph.frames() {
            for mb in 0..per - 1 {
                prop_assert!(imp.get(f, mb) > imp.get(f, mb + 1));
            }
        }
        // Incoming compensation weights are 0 or 1.
        for (node, &w) in graph.incoming_comp_weights().iter().enumerate() {
            prop_assert!(
                w.abs() < 1e-9 || (w - 1.0).abs() < 1e-6,
                "node {} weight {}", node, w
            );
        }
    }

    #[test]
    fn split_merge_identity_random_thresholds(
        seed in 0u64..100,
        t1 in 2.0f64..16.0,
        t2 in 16.0f64..256.0,
    ) {
        use vapp_codec::{Encoder, EncoderConfig};
        use vapp_workloads::{ClipSpec, SceneKind};
        use videoapp::{merge_streams, split_streams, DependencyGraph, ImportanceMap, PivotTable};

        let video = ClipSpec::new(48, 32, 6, SceneKind::Panning).seed(seed).generate();
        let result = Encoder::new(EncoderConfig {
            keyint: 3,
            bframes: 1,
            ..EncoderConfig::default()
        })
        .encode(&video);
        let imp = ImportanceMap::compute(&DependencyGraph::from_analysis(&result.analysis));
        let table = PivotTable::build(&result.analysis, &imp, &[t1, t2]);
        let streams = split_streams(&result.stream, &table);
        prop_assert_eq!(streams.total_bits(), result.stream.payload_bits());
        let merged = merge_streams(&result.stream, &table, &streams);
        prop_assert_eq!(merged, result.stream);
    }
}
