//! Renders and diffs `OBS_*.json` observability snapshots.
//!
//! ```text
//! obs_report OBS_run.json [--top N]
//! obs_report OBS_a.json OBS_b.json [--dur-threshold 5.0] [--min-dur-ns 1000000]
//! ```
//!
//! **One file** — a profiling report: the hierarchical span tree
//! (calls, total, self, min..max per call path), the hottest paths by
//! self time (`--top`, default 15), and per-worker utilization when the
//! run fanned out through `vapp-par`.
//!
//! **Two files** — an observability drift gate in the spirit of
//! `bench_compare`: the run at a fixed seed must produce the *same*
//! counters, histogram distributions, span counts and profile shape
//! every time. Missing, new or changed **stable** values are hard
//! failures (exit 1); durations are wall-clock and only gated by a
//! coarse ratio (`--dur-threshold`, applied when both sides are at
//! least `--min-dur-ns`). Names under the `par.` namespace or ending in
//! `_ns` are *unstable* — scheduling- and clock-dependent — and are
//! reported but never enforced. CI runs the gate on two
//! `VAPP_THREADS=1` pipeline runs at the same seed, where everything
//! stable must match exactly.

use std::process::ExitCode;
use vapp_obs::Snapshot;

/// Scheduling- or clock-dependent names, exempt from exact comparison:
/// the per-worker `par.*` utilization counters and anything ending in
/// `_ns` (wall-clock).
fn is_unstable(name: &str) -> bool {
    name.starts_with("par.") || name.ends_with("_ns")
}

/// Diff tolerances for wall-clock values.
#[derive(Clone, Copy, Debug)]
struct DiffOpts {
    /// Maximum allowed ratio between total durations (both directions).
    dur_threshold: f64,
    /// Durations below this on either side are ignored by the ratio
    /// gate (too noisy to compare).
    min_dur_ns: u64,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts {
            dur_threshold: 5.0,
            min_dur_ns: 1_000_000,
        }
    }
}

fn dur_ratio_exceeded(a_ns: u64, b_ns: u64, opts: DiffOpts) -> bool {
    if a_ns < opts.min_dur_ns || b_ns < opts.min_dur_ns {
        return false;
    }
    let ratio = a_ns.max(b_ns) as f64 / a_ns.min(b_ns).max(1) as f64;
    ratio > opts.dur_threshold
}

/// Compares two snapshots; returns the list of drift findings (empty
/// means the runs agree on everything stable).
fn diff(a: &Snapshot, b: &Snapshot, opts: DiffOpts) -> Vec<String> {
    let mut out = Vec::new();

    // Counters: exact key set and values, unstable names exempt.
    let stable = |cs: &[(String, u64)]| -> Vec<(String, u64)> {
        cs.iter()
            .filter(|(n, _)| !is_unstable(n))
            .cloned()
            .collect()
    };
    let (ca, cb) = (stable(&a.counters), stable(&b.counters));
    for (name, va) in &ca {
        match cb.iter().find(|(n, _)| n == name) {
            None => out.push(format!("counter `{name}` missing from the second run")),
            Some((_, vb)) if vb != va => {
                out.push(format!("counter `{name}` changed: {va} -> {vb}"))
            }
            Some(_) => {}
        }
    }
    for (name, _) in &cb {
        if !ca.iter().any(|(n, _)| n == name) {
            out.push(format!("counter `{name}` new in the second run"));
        }
    }

    // Histograms: same names; stable ones must have identical
    // distributions (count, sum, min, max and every sketch bucket).
    for ha in &a.histograms {
        let Some(hb) = b.histogram(&ha.name) else {
            out.push(format!(
                "histogram `{}` missing from the second run",
                ha.name
            ));
            continue;
        };
        if is_unstable(&ha.name) {
            continue;
        }
        if (ha.count, ha.sum, ha.min, ha.max) != (hb.count, hb.sum, hb.min, hb.max) {
            out.push(format!(
                "histogram `{}` changed: count/sum/min/max {}/{}/{}/{} -> {}/{}/{}/{}",
                ha.name, ha.count, ha.sum, ha.min, ha.max, hb.count, hb.sum, hb.min, hb.max
            ));
        } else if ha.sketch != hb.sketch {
            out.push(format!(
                "histogram `{}` changed: same summary, different distribution",
                ha.name
            ));
        }
    }
    for hb in &b.histograms {
        if a.histogram(&hb.name).is_none() {
            out.push(format!("histogram `{}` new in the second run", hb.name));
        }
    }

    // Spans: same names and counts; totals gated by the duration ratio.
    for sa in &a.spans {
        let Some(sb) = b.span(&sa.name) else {
            out.push(format!("span `{}` missing from the second run", sa.name));
            continue;
        };
        if sa.count != sb.count {
            out.push(format!(
                "span `{}` count changed: {} -> {}",
                sa.name, sa.count, sb.count
            ));
        } else if dur_ratio_exceeded(sa.total_ns, sb.total_ns, opts) {
            out.push(format!(
                "span `{}` duration drifted past {:.1}x: {} ns -> {} ns",
                sa.name, opts.dur_threshold, sa.total_ns, sb.total_ns
            ));
        }
    }
    for sb in &b.spans {
        if a.span(&sb.name).is_none() {
            out.push(format!("span `{}` new in the second run", sb.name));
        }
    }

    // Profile: same call paths and counts (the tree shape is part of
    // the determinism contract); durations gated like spans.
    for pa in &a.profile {
        let Some(pb) = b.profile_path(&pa.path) else {
            out.push(format!(
                "profile path `{}` missing from the second run",
                pa.path
            ));
            continue;
        };
        if pa.count != pb.count {
            out.push(format!(
                "profile path `{}` count changed: {} -> {}",
                pa.path, pa.count, pb.count
            ));
        } else if dur_ratio_exceeded(pa.total_ns, pb.total_ns, opts) {
            out.push(format!(
                "profile path `{}` duration drifted past {:.1}x: {} ns -> {} ns",
                pa.path, opts.dur_threshold, pa.total_ns, pb.total_ns
            ));
        }
    }
    for pb in &b.profile {
        if a.profile_path(&pb.path).is_none() {
            out.push(format!("profile path `{}` new in the second run", pb.path));
        }
    }

    out
}

/// Renders the single-snapshot profiling report.
fn render_report(run: &str, snap: &Snapshot, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs_report: run `{run}` — {} counters, {} histograms, {} spans, {} profile paths \
         (captured at {:.1} ms)",
        snap.counters.len(),
        snap.histograms.len(),
        snap.spans.len(),
        snap.profile.len(),
        snap.captured_ns as f64 / 1e6,
    );
    if !snap.profile.is_empty() {
        out.push('\n');
        out.push_str(&vapp_obs::profile::render_tree(&snap.profile));
        out.push('\n');
        out.push_str(&vapp_obs::profile::render_self_table(&snap.profile, top));
    }
    let workers: Vec<&(String, u64)> = snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("par.worker.") && n.ends_with(".tasks"))
        .collect();
    if !workers.is_empty() {
        out.push_str("\nworker utilization:\n");
        for (name, tasks) in workers {
            let w = name
                .trim_start_matches("par.worker.")
                .trim_end_matches(".tasks");
            let busy = snap.counter(&format!("par.worker.{w}.busy_ns"));
            let idle = snap.counter(&format!("par.worker.{w}.idle_ns"));
            let wall = busy + idle;
            let frac = if wall == 0 {
                0.0
            } else {
                100.0 * busy as f64 / wall as f64
            };
            let _ = writeln!(
                out,
                "  worker {w:>2}: {tasks:>6} tasks, busy {frac:>5.1}% ({:.1} ms busy / {:.1} ms idle)",
                busy as f64 / 1e6,
                idle as f64 / 1e6,
            );
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("\nhistograms (count, mean, p50/p95/p99, min..max):\n");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<36} x{:<7} mean {:>10.1}  p50 {:.1} p95 {:.1} p99 {:.1}  [{} .. {}]",
                h.name,
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.min,
                h.max,
            );
        }
    }
    out
}

fn load(path: &str) -> Result<(String, Snapshot), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = DiffOpts::default();
    let mut top = 15usize;
    let mut paths = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--dur-threshold" {
            opts.dur_threshold = it
                .next()
                .ok_or("--dur-threshold needs a value")?
                .parse()
                .map_err(|_| "--dur-threshold: invalid value".to_string())?;
        } else if a == "--min-dur-ns" {
            opts.min_dur_ns = it
                .next()
                .ok_or("--min-dur-ns needs a value")?
                .parse()
                .map_err(|_| "--min-dur-ns: invalid value".to_string())?;
        } else if a == "--top" {
            top = it
                .next()
                .ok_or("--top needs a value")?
                .parse()
                .map_err(|_| "--top: invalid value".to_string())?;
        } else {
            paths.push(a);
        }
    }
    match paths.as_slice() {
        [path] => {
            let (run, snap) = load(path)?;
            print!("{}", render_report(&run, &snap, top));
            Ok(())
        }
        [path_a, path_b] => {
            let (run_a, a) = load(path_a)?;
            let (run_b, b) = load(path_b)?;
            let findings = diff(&a, &b, opts);
            if findings.is_empty() {
                println!(
                    "obs_report: `{run_a}` and `{run_b}` agree on all stable observables \
                     ({} counters, {} histograms, {} spans, {} profile paths)",
                    a.counters.iter().filter(|(n, _)| !is_unstable(n)).count(),
                    a.histograms.len(),
                    a.spans.len(),
                    a.profile.len(),
                );
                Ok(())
            } else {
                for f in &findings {
                    eprintln!("obs_report: DRIFT: {f}");
                }
                Err(format!(
                    "{} drift finding(s) between {path_a} and {path_b}",
                    findings.len()
                ))
            }
        }
        _ => Err("usage: obs_report OBS.json [OBS_b.json] [--top N] \
                  [--dur-threshold 5.0] [--min-dur-ns 1000000]"
            .into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_report: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vapp_obs::registry::{with_registry, Registry};

    fn sample() -> Snapshot {
        let reg = Arc::new(Registry::new());
        with_registry(reg.clone(), || {
            vapp_obs::counter!("test.stable.count", 7u64);
            vapp_obs::counter!("par.worker.0.tasks", 4u64);
            vapp_obs::counter!("par.worker.0.busy_ns", 3_000_000u64);
            vapp_obs::counter!("par.worker.0.idle_ns", 1_000_000u64);
            vapp_obs::histogram!("test.dist.values", 5u64);
            vapp_obs::histogram!("test.dist.values", 9u64);
            let _outer = vapp_obs::span!("report.outer.run");
            let _inner = vapp_obs::span!("report.inner.run");
        });
        reg.snapshot()
    }

    #[test]
    fn identical_snapshots_have_no_drift() {
        let snap = sample();
        assert!(diff(&snap, &snap, DiffOpts::default()).is_empty());
        // And survive a JSON round trip.
        let (_, parsed) = Snapshot::from_json(&snap.to_json("x")).expect("parses");
        assert!(diff(&snap, &parsed, DiffOpts::default()).is_empty());
    }

    #[test]
    fn changed_missing_and_new_counters_are_findings() {
        let a = sample();
        let mut b = a.clone();
        for (name, v) in &mut b.counters {
            if name == "test.stable.count" {
                *v += 1;
            }
        }
        let findings = diff(&a, &b, DiffOpts::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("test.stable.count"), "{findings:?}");
        assert!(findings[0].contains("7 -> 8"), "{findings:?}");

        let mut c = a.clone();
        c.counters.retain(|(n, _)| n != "test.stable.count");
        assert!(diff(&a, &c, DiffOpts::default())
            .iter()
            .any(|f| f.contains("missing")));
        assert!(diff(&c, &a, DiffOpts::default())
            .iter()
            .any(|f| f.contains("new")));
    }

    #[test]
    fn unstable_counters_never_drift() {
        let a = sample();
        let mut b = a.clone();
        for (name, v) in &mut b.counters {
            if name.starts_with("par.") {
                *v = v.wrapping_mul(17).wrapping_add(3);
            }
        }
        assert!(diff(&a, &b, DiffOpts::default()).is_empty());
        // Dropping them entirely is fine too (a 1-thread rerun).
        let mut c = a.clone();
        c.counters.retain(|(n, _)| !n.starts_with("par."));
        assert!(diff(&a, &c, DiffOpts::default()).is_empty());
    }

    #[test]
    fn histogram_distribution_changes_are_findings() {
        let a = sample();
        let mut b = a.clone();
        b.histograms[0].sum += 1;
        assert!(diff(&a, &b, DiffOpts::default())
            .iter()
            .any(|f| f.contains("test.dist.values")));
        let mut c = a.clone();
        c.histograms.clear();
        let findings = diff(&a, &c, DiffOpts::default());
        assert!(
            findings.iter().any(|f| f.contains("missing")),
            "{findings:?}"
        );
    }

    #[test]
    fn span_count_changes_fail_but_duration_noise_does_not() {
        let a = sample();
        let mut b = a.clone();
        for s in &mut b.spans {
            s.total_ns = s.total_ns.wrapping_mul(3) + 5; // < threshold or < min_dur
        }
        assert!(diff(&a, &b, DiffOpts::default()).is_empty());
        let mut c = a.clone();
        c.spans[0].count += 1;
        assert!(diff(&a, &c, DiffOpts::default())
            .iter()
            .any(|f| f.contains("count changed")));
    }

    #[test]
    fn large_duration_drift_is_gated_by_the_ratio() {
        let a = sample();
        let mut b = a.clone();
        // Push both sides over min_dur_ns with a >5x ratio.
        let mut a2 = a.clone();
        a2.spans[0].total_ns = 2_000_000;
        b.spans[0].total_ns = 50_000_000;
        let findings = diff(&a2, &b, DiffOpts::default());
        assert!(
            findings.iter().any(|f| f.contains("drifted past")),
            "{findings:?}"
        );
        // Same magnitudes pass a looser threshold.
        let loose = DiffOpts {
            dur_threshold: 100.0,
            ..DiffOpts::default()
        };
        assert!(diff(&a2, &b, loose).is_empty());
    }

    #[test]
    fn profile_shape_changes_are_findings() {
        let a = sample();
        let mut b = a.clone();
        b.profile.retain(|p| !p.path.contains("inner"));
        let findings = diff(&a, &b, DiffOpts::default());
        assert!(
            findings
                .iter()
                .any(|f| f.contains("report.outer.run>report.inner.run") && f.contains("missing")),
            "{findings:?}"
        );
    }

    #[test]
    fn report_renders_tree_utilization_and_quantiles() {
        let snap = sample();
        let report = render_report("unit", &snap, 10);
        assert!(report.contains("run `unit`"), "{report}");
        assert!(report.contains("report.outer.run"), "{report}");
        assert!(
            report.contains("  report.inner.run"),
            "tree indents:\n{report}"
        );
        assert!(report.contains("worker  0"), "{report}");
        assert!(report.contains("75.0%"), "{report}");
        assert!(report.contains("p95"), "{report}");
    }

    #[test]
    fn unstable_classification_is_prefix_and_suffix_based() {
        assert!(is_unstable("par.worker.3.tasks"));
        assert!(is_unstable("storage.decode.busy_ns"));
        assert!(!is_unstable("core.flips.injected"));
        assert!(!is_unstable("storage.bch.clean"));
    }
}
