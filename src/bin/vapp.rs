//! `vapp` — command-line driver for the VideoApp reproduction.
//!
//! ```text
//! vapp generate --kind <scene> --width W --height H --frames N [--seed S] OUT.vraw
//! vapp encode   [--crf N] [--keyint N] [--bframes N] [--slices N] [--cavlc] IN.vraw OUT.vapp
//! vapp decode   IN.vapp OUT.vraw
//! vapp analyze  IN.vraw            # importance statistics and class table
//! vapp store    IN.vraw [--raw-ber R] [--seed S]   # simulate approximate storage
//! vapp psnr     A.vraw B.vraw
//! ```

use std::collections::VecDeque;
use std::process::ExitCode;

use vapp_codec::{decode, EncodedVideo, Encoder, EncoderConfig, EntropyMode};
use vapp_media::Video;
use vapp_metrics::video_psnr;
use vapp_rand::rngs::StdRng;
use vapp_rand::SeedableRng;
use vapp_workloads::{ClipSpec, SceneKind};
use videoapp::{
    burst_erasure, data_in_video, mlc_pcm, ApproxStore, BurstConfig, EcScheme, ImportanceMap,
    PivotTable, StoragePolicy, Substrate, VideoApp, VideoChannelConfig,
};

/// How `--stats` wants the observability snapshot rendered.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args: VecDeque<String> = std::env::args().skip(1).collect();
    // `--threads` is global: it pins the worker count of every parallel
    // region for the whole run (beats `VAPP_THREADS`; `1` = sequential).
    match take_flag_value(&mut args, "--threads") {
        Ok(Some(v)) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => vapp_par::set_threads(Some(n)),
            _ => {
                eprintln!("error: --threads: expected a positive integer");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Observability flags are global: valid on every subcommand.
    let trace_path = match take_flag_value(&mut args, "--trace") {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stats = None;
    args.retain(|a| match a.as_str() {
        "--stats" => {
            stats = Some(StatsMode::Text);
            false
        }
        "--stats=json" => {
            stats = Some(StatsMode::Json);
            false
        }
        _ => true,
    });
    let Some(command) = args.pop_front() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(args),
        "encode" => cmd_encode(args),
        "decode" => cmd_decode(args),
        "analyze" => cmd_analyze(args),
        "store" => cmd_store(args),
        "archive" => cmd_archive(args),
        "psnr" => cmd_psnr(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match stats {
        Some(StatsMode::Text) => eprint!("{}", vapp_obs::current().snapshot().render_text(80)),
        Some(StatsMode::Json) => println!("{}", vapp_obs::current().snapshot().to_json(&command)),
        None => {}
    }
    if let Some(path) = &trace_path {
        match vapp_obs::write_trace(std::path::Path::new(path), &command) {
            Ok(p) => eprintln!("vapp: wrote trace {}", p.display()),
            Err(e) => eprintln!("error: cannot write trace {path}: {e}"),
        }
    }
    vapp_obs::maybe_write_run_snapshot(&command);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
vapp — approximate video storage (VideoApp, ASPLOS 2017 reproduction)

raw video paths ending in .y4m use the YUV4MPEG2 format (interoperable
with ffmpeg/mpv, luma only); any other extension uses the VRAW format.

usage:
  vapp generate --kind KIND --width W --height H --frames N [--seed S] [--fps F] OUT.vraw
  vapp encode   [--crf N] [--keyint N] [--bframes N] [--slices N] [--cavlc] IN.vraw OUT.vapp
  vapp decode   IN.vapp OUT.vraw
  vapp analyze  IN.vraw [--crf N]
  vapp store    IN.vraw [--crf N] [--substrate mlc|burst|video] [--raw-ber R]
                [--seed S] [--report-json PATH]
  vapp archive  [--smoke|--soak] [--clients N] [--rounds N] [--objects N]
                [--raw-ber R] [--seed S]
  vapp psnr     A.vraw B.vraw

archive (fleet simulation): drives the sharded multi-tenant archive
  service with a deterministic client fleet (Zipf reads, Poisson-ish
  uploads) and prints the archive_report: throughput plus p50/p99/p999
  latency per op class. --smoke (default) is the tier-1 CI scale; --soak
  is thousands of clients. The run is a pure function of --seed at any
  --threads count.

substrates (vapp store): mlc (default) is the paper's 8-level PCM at
  --raw-ber (default 1e-3); burst is page-erasure NAND protected by
  interleaved Reed-Solomon; video round-trips the payload through the
  lossy codec itself (--raw-ber is ignored by burst/video).

parallelism (any subcommand; outputs are identical at any worker count):
  --threads N    pin parallel regions to N workers (1 = fully sequential)
  VAPP_THREADS=N same, via the environment (the flag wins)

observability (any subcommand):
  --stats        print the metrics/span summary to stderr after the run
  --stats=json   print the full observability snapshot as JSON to stdout
  --trace PATH   write a chrome://tracing trace-event JSON after the run
  VAPP_OBS=error|warn|info|debug|trace   enable the stderr event sink
  VAPP_OBS_OUT=DIR                       write OBS_<command>.json there
  VAPP_OBS_TRACE=PATH                    same as --trace, via the environment

profiling: render or drift-gate OBS snapshots with `obs_report` (see
  README \"Profiling\"); `obs_report A.json B.json` exits nonzero on
  counter/profile drift between two same-seed runs.

scene kinds: blocks fast pan local noise cuts breathing";

/// Splits `--flag value` options out of the argument list; returns the
/// remaining positional arguments.
fn parse_flags(
    mut args: VecDeque<String>,
    mut on_flag: impl FnMut(&str, Option<&str>) -> Result<bool, String>,
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    while let Some(a) = args.pop_front() {
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = on_flag(name, args.front().map(|s| s.as_str()))?;
            if takes_value {
                args.pop_front();
            }
        } else {
            positional.push(a);
        }
    }
    Ok(positional)
}

fn parse_num<T: std::str::FromStr>(name: &str, v: Option<&str>) -> Result<T, String> {
    v.ok_or_else(|| format!("--{name} needs a value"))?
        .parse()
        .map_err(|_| format!("--{name}: invalid value"))
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("{path}: {e}"))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
}

/// Loads a raw video, dispatching on the file extension: `.y4m` uses the
/// YUV4MPEG2 parser (luma only), everything else the VRAW format.
fn load_video(path: &str) -> Result<Video, String> {
    let bytes = read_file(path)?;
    if path.ends_with(".y4m") {
        Video::from_y4m_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        Video::from_raw_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    }
}

/// Saves a raw video, dispatching on the extension like [`load_video`].
fn save_video(path: &str, video: &Video) -> Result<(), String> {
    let bytes = if path.ends_with(".y4m") {
        video.to_y4m_bytes()
    } else {
        video.to_raw_bytes()
    };
    write_file(path, &bytes)
}

fn cmd_generate(args: VecDeque<String>) -> Result<(), String> {
    let (mut kind, mut w, mut h, mut n, mut seed, mut fps) = (
        "blocks".to_string(),
        160usize,
        96usize,
        48usize,
        0u64,
        50.0f64,
    );
    let positional = parse_flags(args, |name, v| {
        match name {
            "kind" => kind = v.ok_or("--kind needs a value")?.to_string(),
            "width" => w = parse_num(name, v)?,
            "height" => h = parse_num(name, v)?,
            "frames" => n = parse_num(name, v)?,
            "seed" => seed = parse_num(name, v)?,
            "fps" => fps = parse_num(name, v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
        Ok(true)
    })?;
    let [out] = positional.as_slice() else {
        return Err("generate needs one output path".into());
    };
    let scene = match kind.as_str() {
        "blocks" => SceneKind::MovingBlocks,
        "fast" => SceneKind::FastMotion,
        "pan" => SceneKind::Panning,
        "local" => SceneKind::LocalMotion,
        "noise" => SceneKind::NoisyStatic,
        "cuts" => SceneKind::SceneCuts,
        "breathing" => SceneKind::Breathing,
        other => return Err(format!("unknown scene kind `{other}`")),
    };
    let video = ClipSpec::new(w, h, n, scene).seed(seed).fps(fps).generate();
    save_video(out, &video)?;
    println!("wrote {out}: {w}x{h}, {n} frames, {kind}");
    Ok(())
}

fn encoder_flags(args: VecDeque<String>) -> Result<(EncoderConfig, u64, f64, Vec<String>), String> {
    let mut cfg = EncoderConfig::default();
    let mut seed = 1u64;
    let mut raw_ber = 1e-3f64;
    let positional = parse_flags(args, |name, v| match name {
        "crf" => {
            cfg.crf = parse_num(name, v)?;
            Ok(true)
        }
        "keyint" => {
            cfg.keyint = parse_num(name, v)?;
            Ok(true)
        }
        "bframes" => {
            cfg.bframes = parse_num(name, v)?;
            Ok(true)
        }
        "slices" => {
            cfg.slices = parse_num(name, v)?;
            Ok(true)
        }
        "seed" => {
            seed = parse_num(name, v)?;
            Ok(true)
        }
        "raw-ber" => {
            raw_ber = parse_num(name, v)?;
            Ok(true)
        }
        "cavlc" => {
            cfg.entropy = EntropyMode::Cavlc;
            Ok(false)
        }
        "approx-bias" => {
            cfg.approx_bias = true;
            Ok(false)
        }
        other => Err(format!("unknown flag --{other}")),
    })?;
    Ok((cfg, seed, raw_ber, positional))
}

fn cmd_encode(args: VecDeque<String>) -> Result<(), String> {
    let (cfg, _, _, positional) = encoder_flags(args)?;
    let [input, output] = positional.as_slice() else {
        return Err("encode needs IN.vraw OUT.vapp".into());
    };
    let video = load_video(input)?;
    let result = Encoder::new(cfg).encode(&video);
    write_file(output, &result.stream.to_bytes())?;
    let bits = result.stream.payload_bits() + result.stream.header_bits();
    println!(
        "encoded {} frames: {} bytes ({:.2} bits/pixel), PSNR {:.2} dB",
        video.len(),
        bits / 8,
        bits as f64 / video.total_pixels() as f64,
        video_psnr(&video, &result.reconstruction),
    );
    Ok(())
}

fn cmd_decode(args: VecDeque<String>) -> Result<(), String> {
    let positional = parse_flags(args, |name, _| Err(format!("unknown flag --{name}")))?;
    let [input, output] = positional.as_slice() else {
        return Err("decode needs IN.vapp OUT.vraw".into());
    };
    let stream =
        EncodedVideo::from_bytes(&read_file(input)?).map_err(|e| format!("{input}: {e}"))?;
    let video = decode(&stream);
    save_video(output, &video)?;
    println!("decoded {} frames to {output}", video.len());
    Ok(())
}

fn cmd_analyze(args: VecDeque<String>) -> Result<(), String> {
    let (cfg, _, _, positional) = encoder_flags(args)?;
    let [input] = positional.as_slice() else {
        return Err("analyze needs IN.vraw".into());
    };
    let video = load_video(input)?;
    let processed = VideoApp::new(cfg).process(&video);
    println!(
        "{}: {} MBs across {} frames, payload {} bits",
        input,
        processed.analysis.total_mbs(),
        processed.analysis.frames.len(),
        processed.stream.payload_bits()
    );
    println!(
        "importance: max {:.0} (class 2^{})",
        processed.importance.max(),
        ImportanceMap::class_of(processed.importance.max())
    );
    println!("\nclass     mbs        bits     bits%");
    let total = processed.stream.payload_bits().max(1);
    for c in processed.classes() {
        println!(
            "<=2^{:<4} {:>6} {:>11} {:>8.1}%",
            c.exp,
            c.mbs,
            c.bits,
            100.0 * c.bits as f64 / total as f64
        );
    }
    Ok(())
}

/// Removes `--flag VALUE` from the argument list, returning the value.
fn take_flag_value(args: &mut VecDeque<String>, flag: &str) -> Result<Option<String>, String> {
    let mut out = None;
    let mut rest = VecDeque::with_capacity(args.len());
    while let Some(a) = args.pop_front() {
        if a == flag {
            out = Some(
                args.pop_front()
                    .ok_or_else(|| format!("{flag} needs a value"))?,
            );
        } else {
            rest.push_back(a);
        }
    }
    *args = rest;
    Ok(out)
}

/// Builds the substrate selected by `vapp store --substrate`.
fn pick_substrate(name: &str, raw_ber: f64) -> Result<std::sync::Arc<dyn Substrate>, String> {
    match name {
        "mlc" => Ok(mlc_pcm(raw_ber)),
        "burst" => Ok(burst_erasure(BurstConfig::default())),
        "video" => Ok(data_in_video(VideoChannelConfig::default())),
        other => Err(format!(
            "unknown substrate `{other}` (expected mlc, burst or video)"
        )),
    }
}

fn cmd_store(mut args: VecDeque<String>) -> Result<(), String> {
    let report_json = take_flag_value(&mut args, "--report-json")?;
    let substrate_name = take_flag_value(&mut args, "--substrate")?.unwrap_or("mlc".to_string());
    let (cfg, seed, raw_ber, positional) = encoder_flags(args)?;
    let substrate = pick_substrate(&substrate_name, raw_ber)?;
    let [input] = positional.as_slice() else {
        return Err("store needs IN.vraw".into());
    };
    let video = load_video(input)?;
    let processed = VideoApp::new(cfg).process(&video);
    let thresholds = vec![8.0, 128.0, 2048.0];
    let table = PivotTable::build(&processed.analysis, &processed.importance, &thresholds);
    let channel_ber = substrate.raw_ber();
    let store = ApproxStore::new(StoragePolicy {
        ladder_levels: vec![
            EcScheme::Bch(6),
            EcScheme::Bch(7),
            EcScheme::Bch(9),
            EcScheme::Bch(11),
        ],
        thresholds,
        substrate,
        exact_bch: true,
    });
    let report = store.report(&processed.stream, &table, video.total_pixels() as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let loaded = store.store_load(&processed.stream, &table, &mut rng);
    let decoded = decode(&loaded);
    println!("raw BER {channel_ber:.1e} on substrate `{substrate_name}`:");
    println!("  cells/pixel:        {:.4}", report.cells_per_pixel());
    println!("  density vs SLC:     {:.2}x", report.density_vs_slc());
    println!(
        "  saved vs uniform:   {:.1}%",
        report.savings_vs_uniform() * 100.0
    );
    println!(
        "  EC overhead cut:    {:.0}%",
        report.ec_overhead_reduction() * 100.0
    );
    println!(
        "  PSNR after storage: {:.2} dB (error-free {:.2} dB)",
        video_psnr(&video, &decoded),
        video_psnr(&video, &processed.reconstruction),
    );
    if let Some(path) = report_json {
        let snap = vapp_obs::current().snapshot();
        let json = format!(
            "{{\"report\":{},\"obs\":{}}}\n",
            report.to_json(),
            snap.to_json("store")
        );
        write_file(&path, json.as_bytes())?;
        println!("  report JSON:        {path}");
    }
    Ok(())
}

fn cmd_archive(args: VecDeque<String>) -> Result<(), String> {
    let mut cfg = vapp_archive::FleetConfig::smoke();
    let mut seed = 0xA2C4_17E0u64; // the tier-1 test's pinned seed
    let positional = parse_flags(args, |name, v| {
        Ok(match name {
            "smoke" => {
                cfg = vapp_archive::FleetConfig::smoke();
                false
            }
            "soak" => {
                cfg = vapp_archive::FleetConfig::soak();
                false
            }
            "clients" => {
                cfg.clients = parse_num(name, v)?;
                true
            }
            "rounds" => {
                cfg.rounds = parse_num(name, v)?;
                true
            }
            "objects" => {
                cfg.initial_objects = parse_num(name, v)?;
                true
            }
            "raw-ber" => {
                cfg.raw_ber = parse_num(name, v)?;
                true
            }
            "seed" => {
                seed = parse_num(name, v)?;
                true
            }
            _ => return Err(format!("unknown flag --{name}")),
        })
    })?;
    if !positional.is_empty() {
        return Err("archive takes no positional arguments".into());
    }
    let outcome = vapp_archive::run_fleet(&cfg, seed);
    let snap = vapp_obs::current().snapshot();
    print!("{}", vapp_archive::report::render(&outcome, &snap));
    if outcome.completed + outcome.rejected != outcome.submitted {
        return Err("request accounting broken: submitted != completed + rejected".into());
    }
    if outcome.completed == 0 {
        return Err("fleet completed zero requests".into());
    }
    Ok(())
}

fn cmd_psnr(args: VecDeque<String>) -> Result<(), String> {
    let positional = parse_flags(args, |name, _| Err(format!("unknown flag --{name}")))?;
    let [a, b] = positional.as_slice() else {
        return Err("psnr needs A.vraw B.vraw".into());
    };
    let va = load_video(a)?;
    let vb = load_video(b)?;
    println!("PSNR: {:.3} dB", video_psnr(&va, &vb));
    Ok(())
}
