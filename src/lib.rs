//! Umbrella crate for the VideoApp reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.

pub use vapp_archive as archive;
pub use vapp_codec as codec;
pub use vapp_crypto as crypto;
pub use vapp_media as media;
pub use vapp_metrics as metrics;
pub use vapp_obs as obs;
pub use vapp_sim as sim;
pub use vapp_storage as storage;
pub use vapp_workloads as workloads;
pub use videoapp as core;
